"""Cost-model parameters — Table 4A of the paper.

:class:`CostParameters` carries every symbol of Table 1 that the
algebraic formulas need, pre-loaded with the Table 4A values for the
30x30 grid. :meth:`CostParameters.for_graph` derives the graph-size
dependent quantities (|S|, |R|, block counts, index level) for any
benchmark graph, holding the hardware constants fixed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

from repro.exceptions import CostModelError


def _ceil_div(numerator: int, denominator: int) -> int:
    if denominator <= 0:
        raise CostModelError("blocking factors must be positive")
    return -(-numerator // denominator)


@dataclass(frozen=True)
class CostParameters:
    """Table 4A parameter set (defaults: the paper's 30x30 grid)."""

    # Fixed charges (units).
    create_cost: float = 0.5  # I: creating a temporary relation
    delete_cost: float = 0.5  # D_t: deleting all tuples of a relation
    # Unit times.
    t_read: float = 0.035
    t_write: float = 0.05
    t_update: float = 0.085
    # Index / selection characteristics.
    index_levels: int = 3  # I_l
    selection_cardinality: int = 1  # S_r
    # Graph-shape parameters.
    adjacency: float = 4.0  # |A|: average neighbors per node
    edge_tuples: int = 3480  # |S|
    node_tuples: int = 900  # |R|
    # Physical layout.
    block_size: int = 4096  # B
    edge_tuple_size: int = 32  # T_s
    node_tuple_size: int = 16  # T_r

    # ------------------------------------------------------------------
    # derived quantities (Table 1)
    # ------------------------------------------------------------------
    @property
    def bf_s(self) -> int:
        """Blocking factor of S: B / T_s (128 in Table 4A)."""
        return self.block_size // self.edge_tuple_size

    @property
    def bf_r(self) -> int:
        """Blocking factor of R: B / T_r (256 in Table 4A)."""
        return self.block_size // self.node_tuple_size

    @property
    def bf_rs(self) -> int:
        """Blocking factor of R x S results: B / (T_r + T_s) (85-86)."""
        return self.block_size // (self.node_tuple_size + self.edge_tuple_size)

    @property
    def edge_blocks(self) -> int:
        """B_s = |S| / Bf_s."""
        return _ceil_div(self.edge_tuples, self.bf_s)

    @property
    def node_blocks(self) -> int:
        """B_r = |R| / Bf_r."""
        return _ceil_div(self.node_tuples, self.bf_r)

    # ------------------------------------------------------------------
    def validate(self) -> "CostParameters":
        """Raise :class:`CostModelError` on inconsistent parameters."""
        if min(self.t_read, self.t_write, self.t_update) < 0:
            raise CostModelError("unit times must be non-negative")
        if self.index_levels < 1:
            raise CostModelError("index level I_l must be at least 1")
        if self.edge_tuples < 0 or self.node_tuples < 0:
            raise CostModelError("relation cardinalities must be non-negative")
        if self.block_size < max(self.edge_tuple_size, self.node_tuple_size):
            raise CostModelError("block size must hold at least one tuple")
        if self.adjacency <= 0:
            raise CostModelError("average adjacency |A| must be positive")
        return self

    def for_graph(
        self,
        node_count: int,
        edge_count: int,
        adjacency: Optional[float] = None,
    ) -> "CostParameters":
        """Rederive the graph-shape parameters for another graph.

        Hardware constants (times, block size, tuple sizes) carry over;
        the ISAM index level is re-estimated from the node count with
        the Table 4A fanout implied by |R| = 900 -> I_l = 3.
        """
        if node_count <= 0:
            raise CostModelError("node count must be positive")
        fanout = 10  # 900 keys -> 90 -> 9 -> 1: three levels
        levels = max(1, math.ceil(math.log(max(node_count, 2), fanout)))
        return replace(
            self,
            node_tuples=node_count,
            edge_tuples=edge_count,
            adjacency=(
                adjacency
                if adjacency is not None
                else edge_count / node_count
            ),
            index_levels=levels,
        ).validate()


#: The exact Table 4A instantiation (30x30 grid).
PAPER_TABLE_4A = CostParameters().validate()


def parameters_for_grid(k: int) -> CostParameters:
    """Table 4A constants rederived for a k x k benchmark grid."""
    node_count = k * k
    edge_count = 2 * 2 * k * (k - 1)  # two directed edges per segment
    return PAPER_TABLE_4A.for_graph(node_count, edge_count, adjacency=4.0)
