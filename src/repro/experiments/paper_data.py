"""The paper's published numbers, transcribed for side-by-side reports.

Every table the paper prints is recorded here verbatim so the
experiment reports can show paper-vs-measured columns. Figures 5-12
have no printed values (they are plots); for those the report compares
*shapes* — orderings and growth rates — which are asserted in the
integration tests as well.
"""

from __future__ import annotations

#: Table 4B: estimated costs, 30x30 grid, 20% variance (cost units).
TABLE_4B = {
    "dijkstra": {"horizontal": 1055.6, "semi-diagonal": 1656.8, "diagonal": 1941.2},
    "astar-v3": {"horizontal": 66.7, "semi-diagonal": 881.2, "diagonal": 1809.8},
    "iterative": {"horizontal": 176.9, "semi-diagonal": 176.9, "diagonal": 176.9},
}

#: Table 5: iterations vs graph size (20% variance, diagonal path).
TABLE_5 = {
    "dijkstra": {10: 99, 20: 399, 30: 899},
    "astar-v3": {10: 85, 20: 360, 30: 838},
    "iterative": {10: 19, 20: 39, 30: 59},
}

#: Table 6: iterations vs path length (20% variance, 30x30 grid).
TABLE_6 = {
    "dijkstra": {"horizontal": 488, "semi-diagonal": 767, "diagonal": 899},
    "astar-v3": {"horizontal": 29, "semi-diagonal": 407, "diagonal": 838},
    "iterative": {"horizontal": 59, "semi-diagonal": 59, "diagonal": 59},
}

#: Table 7: iterations vs edge-cost model (20x20 grid, diagonal path).
TABLE_7 = {
    "dijkstra": {"uniform": 399, "variance": 399, "skewed": 48},
    "astar-v3": {"uniform": 189, "variance": 360, "skewed": 38},
    "iterative": {"uniform": 39, "variance": 39, "skewed": 56},
}

#: Table 8: iterations on the Minneapolis map, four query pairs.
TABLE_8 = {
    "iterative": {"A to B": 55, "C to D": 51, "G to D": 55, "E to F": 41},
    "astar-v3": {"A to B": 453, "C to D": 266, "G to D": 17, "E to F": 64},
    "dijkstra": {"A to B": 1058, "C to D": 1006, "G to D": 105, "E to F": 307},
}

#: Table 4A parameter values (duplicated from repro.costmodel.params for
#: report rendering; the authoritative copy lives there).
TABLE_4A = {
    "I": 0.5,
    "I_l": 3,
    "S_r": 1,
    "A": 4,
    "|S|": 3480,
    "|R|": 900,
    "D_t": 0.5,
    "B": 4096,
    "T_s": 32,
    "T_r": 16,
    "Bf_s": 128,
    "Bf_r": 256,
    "Bf_rs": 86,
    "t_read": 0.035,
    "t_write": 0.05,
    "t_update": 0.085,
}

#: The figures and the qualitative claims each one makes (used by the
#: report generator to state what was checked).
FIGURE_CLAIMS = {
    "figure-5": "Execution time vs graph size (variance, diagonal): "
    "Dijkstra and A*-v3 grow ~linearly in n; Iterative grows sublinearly "
    "and is cheapest.",
    "figure-6": "Execution time vs path length (30x30, variance): A*-v3 "
    "wins horizontal paths; Iterative wins semi-diagonal and diagonal.",
    "figure-7": "Execution time vs cost model (20x20, diagonal): skewed "
    "costs collapse Dijkstra/A* cost; variance is worst for A*-v3.",
    "figure-9": "Minneapolis: Iterative beats estimator algorithms on the "
    "long diagonals; A*-v3 beats Iterative by a wide margin on G->D and "
    "E->F.",
    "figure-10": "A* versions vs graph size: v1 wins at 10x10, loses to "
    "v2 as size grows; v3 <= v2 everywhere.",
    "figure-11": "A* versions vs cost model (20x20): every version is "
    "worst at 20% variance; v1 beats v2 on the skewed graph.",
    "figure-12": "A* versions vs path length (30x30): v1 starts best and "
    "falls behind v2 on longer paths; v3 grows ~linearly with path "
    "length.",
}
