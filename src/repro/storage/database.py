"""Database: a catalog of relations sharing one buffer pool and one
I/O-statistics ledger.

This is the outermost object of the storage substrate — the simulated
single-user INGRES instance the paper ran its EQUEL programs against.
Creating a relation charges the fixed creation cost ``I`` from Table 4A;
dropping one charges ``D_t``.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.exceptions import DuplicateRelationError, RelationNotFoundError
from repro.storage.buffer import BufferPool
from repro.storage.iostats import IOStatistics
from repro.storage.page import DEFAULT_BLOCK_SIZE
from repro.storage.relation import Relation
from repro.storage.schema import Schema


class Database:
    """Catalog of relations with shared accounting.

    Parameters
    ----------
    buffer_capacity:
        Pages the buffer pool retains. The default 0 is pass-through
        (every access charged), matching the paper's cost model; give a
        positive capacity to study modern buffering.
    """

    def __init__(
        self,
        name: str = "atis",
        buffer_capacity: int = 0,
        block_size: int = DEFAULT_BLOCK_SIZE,
        stats: Optional[IOStatistics] = None,
        injector: Optional[object] = None,
    ) -> None:
        self.name = name
        self.block_size = block_size
        self.stats = stats if stats is not None else IOStatistics()
        self.injector = injector
        self.buffer_pool = BufferPool(
            self.stats, capacity=buffer_capacity, injector=injector
        )
        self._relations: Dict[str, Relation] = {}
        #: Dirty pages silently discarded by relation drops. The engine
        #: writes its temporaries through (capacity-0 pool) or flushes
        #: before dropping, so a non-zero value means cost-ledger
        #: charges were lost — tests assert it stays 0.
        self.dirty_pages_dropped = 0

    # ------------------------------------------------------------------
    def create_relation(self, schema: Schema, name: Optional[str] = None) -> Relation:
        """Create an empty relation (charges the fixed cost I)."""
        relation_name = name or schema.name
        if relation_name in self._relations:
            raise DuplicateRelationError(relation_name)
        relation = Relation(
            relation_name, schema, self.buffer_pool, self.stats, self.block_size
        )
        self._relations[relation_name] = relation
        self.stats.charge_create()
        return relation

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise RelationNotFoundError(name) from None

    def drop_relation(self, name: str) -> None:
        """Drop a relation (charges the fixed cost D_t)."""
        if name not in self._relations:
            raise RelationNotFoundError(name)
        relation = self._relations.pop(name)
        self.dirty_pages_dropped += self.buffer_pool.invalidate(
            relation.heap.name
        )
        self.stats.charge_delete()

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def relation_names(self) -> Iterator[str]:
        yield from self._relations

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __repr__(self) -> str:
        return (
            f"Database({self.name!r}, relations={sorted(self._relations)}, "
            f"cost={self.stats.cost:.3f})"
        )
