r"""E9 — ablation: single-pair search vs precomputed closures.

Not a paper artifact but the paper's *motivating claim*, quantified:
"These algorithms compute many more paths beyond the single pair path
that is of interest to ATIS, and hence may not be satisfactory for ATIS
due to the dynamic nature of edge costs."

On a benchmark grid we price three architectures for answering Q
route queries between travel-time refreshes:

* **single-pair A\*** — plan each query fresh (no precomputation);
* **all-pairs table** — build Floyd-Warshall / repeated-Dijkstra once
  per refresh, then answer queries by lookup;
* **reachability closure** — what the 1980s TC algorithms actually
  produce (it cannot even answer a cost query, but we count its work
  for scale).

The output reports elementary operations per refresh cycle as a
function of Q, and the break-even query count where a precomputed
table would start to pay — which for ATIS-size refresh rates it never
reaches.
"""

from __future__ import annotations

from typing import Dict, List

from repro.closure.allpairs import floyd_warshall_paths, repeated_dijkstra_paths
from repro.closure.reachability import dfs_closure, seminaive_closure
from repro.core.astar import astar_search
from repro.core.estimators import ManhattanEstimator
from repro.graphs.grid import make_paper_grid, paper_queries
from repro.experiments.spec import ExperimentResult, ExperimentSpec, register
from repro.experiments.tables import render_table

QUERY_COUNTS = (1, 10, 100)


def run(k: int = 15, seed: int = 1993, cross_check: bool = True) -> ExperimentResult:
    graph = make_paper_grid(k, "variance", seed=seed)
    queries = list(paper_queries(k).values())

    # Per-query cost of fresh single-pair search (average edge
    # relaxations over the three canonical queries).
    single_pair_ops: List[int] = []
    for query in queries:
        result = astar_search(
            graph, query.source, query.destination, ManhattanEstimator()
        )
        single_pair_ops.append(result.stats.edges_relaxed)
    per_query = sum(single_pair_ops) / len(single_pair_ops)

    # One-time build cost of each precomputed structure.
    builds = {
        "floyd-warshall": floyd_warshall_paths(graph).operations,
        "repeated-dijkstra": repeated_dijkstra_paths(graph).operations,
        "seminaive-closure": seminaive_closure(graph).operations,
        "dfs-closure": dfs_closure(graph).operations,
    }

    conditions = [f"Q={q}" for q in QUERY_COUNTS]
    operations: Dict[str, Dict[str, float]] = {
        "astar-single-pair": {
            f"Q={q}": per_query * q for q in QUERY_COUNTS
        }
    }
    for name, build_ops in builds.items():
        # Lookup cost after the build is ~path length; negligible but
        # charged as one operation per query for honesty.
        operations[name] = {
            f"Q={q}": build_ops + q for q in QUERY_COUNTS
        }

    breakeven = {
        name: build_ops / per_query for name, build_ops in builds.items()
    }
    cheapest = min(breakeven, key=breakeven.get)
    result = ExperimentResult(
        experiment_id="E9",
        title=(
            f"Ablation: single-pair vs precomputed closures "
            f"({k}x{k} grid, operations per travel-time refresh cycle)"
        ),
        conditions=conditions,
        execution_cost=operations,
        notes=(
            "Break-even queries per refresh before a precomputed table "
            "pays off:\n"
            + "\n".join(
                f"  {name}: {ratio:,.0f} queries"
                for name, ratio in sorted(breakeven.items(), key=lambda x: x[1])
            )
            + f"\n(cheapest closure: {cheapest}; single-pair A* averaged "
            f"{per_query:,.0f} edge relaxations per query)"
        ),
    )
    return result


def render(result: ExperimentResult) -> str:
    table = render_table(
        "Elementary operations per refresh cycle, by queries Q between "
        "refreshes",
        result.execution_cost,
        result.conditions,
        row_header="Architecture",
    )
    return f"{result.title}\n\n{table}\n\n{result.notes}"


SPEC = register(
    ExperimentSpec(
        experiment_id="E9",
        paper_artifacts=("Section 1 motivation (ablation)",),
        title="Single-pair vs precomputed closures",
        runner=run,
        renderer=render,
    )
)
