"""K-shortest loopless paths (Yen's algorithm) — alternative routes.

An ATIS that can only name one route is brittle: the traveller may know
a road is blocked, prefer freeways, or want choices when travel times
are uncertain. Yen's algorithm generalizes the single-pair planners to
the K best loopless routes, reusing any registered planner as its
shortest-path subroutine (A* with a good estimator makes the spur
searches cheap — the same leverage the paper measures for K = 1).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.exceptions import NodeNotFoundError, PlannerError
from repro.graphs.graph import Graph, NodeId
from repro.core.astar import astar_search
from repro.core.estimators import Estimator, ZeroEstimator
from repro.core.result import PathResult, SearchStats


def k_shortest_paths(
    graph: Graph,
    source: NodeId,
    destination: NodeId,
    k: int,
    estimator: Optional[Estimator] = None,
) -> List[PathResult]:
    """The up-to-``k`` cheapest loopless paths, cheapest first.

    Runs Yen's algorithm with A* spur searches (zero estimator by
    default, i.e. Dijkstra; pass a geometric estimator to focus them).
    The graph is copied internally, so edge removals during spur
    computation never touch the caller's graph. The estimator must be
    admissible for the results to be the true K best; with an
    inadmissible one the list is a good-but-unranked sample (same
    caveat as single-pair A*).

    Fewer than ``k`` results are returned when the graph has fewer
    loopless paths.
    """
    if k < 1:
        raise PlannerError(f"k must be at least 1, got {k}")
    if source not in graph:
        raise NodeNotFoundError(source)
    if destination not in graph:
        raise NodeNotFoundError(destination)

    working = graph.copy()
    estimator = estimator if estimator is not None else ZeroEstimator()

    first = astar_search(working, source, destination, estimator)
    if not first.found:
        return []
    accepted: List[PathResult] = [first]
    # Candidate heap entries: (cost, counter, path). The counter keeps
    # heap comparisons away from unorderable node ids.
    candidates: List[Tuple[float, int, List[NodeId]]] = []
    seen_paths = {tuple(first.path)}
    counter = 0

    while len(accepted) < k:
        previous_path = accepted[-1].path
        for spur_index in range(len(previous_path) - 1):
            spur_node = previous_path[spur_index]
            root_path = previous_path[: spur_index + 1]

            removed_edges: List[Tuple[NodeId, NodeId, float]] = []
            # Edges that would recreate an already-accepted path.
            for result in accepted:
                path = result.path
                if len(path) > spur_index and path[: spur_index + 1] == root_path:
                    u, v = path[spur_index], path[spur_index + 1]
                    if working.has_edge(u, v):
                        removed_edges.append((u, v, working.edge_cost(u, v)))
                        working.remove_edge(u, v)
            # Nodes on the root (except the spur) must not be revisited.
            removed_nodes: List[Tuple[NodeId, NodeId, float]] = []
            for node in root_path[:-1]:
                for neighbor, cost in list(working.neighbors(node)):
                    removed_nodes.append((node, neighbor, cost))
                    working.remove_edge(node, neighbor)
                for predecessor, cost in list(working.predecessors(node)):
                    removed_nodes.append((predecessor, node, cost))
                    working.remove_edge(predecessor, node)

            spur = astar_search(working, spur_node, destination, estimator)
            if spur.found:
                total_path = root_path[:-1] + spur.path
                key = tuple(total_path)
                if key not in seen_paths:
                    seen_paths.add(key)
                    counter += 1
                    heapq.heappush(
                        candidates,
                        (graph.path_cost(total_path), counter, total_path),
                    )

            for u, v, cost in removed_edges + removed_nodes:
                working.add_edge(u, v, cost)

        if not candidates:
            break
        cost, _, path = heapq.heappop(candidates)
        accepted.append(
            PathResult(
                source=source,
                destination=destination,
                path=path,
                cost=cost,
                found=True,
                algorithm="yen-k-shortest",
                estimator=estimator.name,
                stats=SearchStats(),
            )
        )
    return accepted


def path_overlap(path_a: List[NodeId], path_b: List[NodeId]) -> float:
    """Edge-overlap fraction between two paths (0 = disjoint, 1 = same).

    Used to pick *diverse* alternatives: a second-best path sharing 95%
    of its edges with the best is not a useful suggestion to a driver.
    """
    edges_a = set(zip(path_a, path_a[1:]))
    edges_b = set(zip(path_b, path_b[1:]))
    if not edges_a or not edges_b:
        return 0.0
    return len(edges_a & edges_b) / min(len(edges_a), len(edges_b))


def diverse_alternatives(
    graph: Graph,
    source: NodeId,
    destination: NodeId,
    count: int = 3,
    max_overlap: float = 0.7,
    search_width: int = 12,
    estimator: Optional[Estimator] = None,
) -> List[PathResult]:
    """Up to ``count`` routes no two of which overlap more than
    ``max_overlap`` (edge-wise), drawn from the ``search_width`` best.

    Returns at least the optimal route whenever one exists.
    """
    if not 0 <= max_overlap <= 1:
        raise PlannerError("max_overlap must lie in [0, 1]")
    ranked = k_shortest_paths(
        graph, source, destination, search_width, estimator
    )
    chosen: List[PathResult] = []
    for candidate in ranked:
        if all(
            path_overlap(candidate.path, kept.path) <= max_overlap
            for kept in chosen
        ):
            chosen.append(candidate)
        if len(chosen) == count:
            break
    return chosen
