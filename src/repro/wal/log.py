"""The write-ahead log: redo records, forced commits, fuzzy checkpoints.

Protocol (redo-only, ARIES-lite):

* Every structural mutation of a :class:`~repro.storage.database.Database`
  appends one CRC-framed redo record *after* the in-memory apply
  succeeds and forces it to the stable store — the record's presence is
  the commit. There is no undo: the storage layer applies operations
  atomically in memory, so a crash can only lose the tail operation,
  never leave half of one.
* A *fuzzy checkpoint* flushes the buffer pool, serialises the whole
  database into one framed snapshot, atomically replaces the previous
  snapshot, and truncates the log. A crash mid-checkpoint leaves the
  old snapshot + old log intact (snapshot replacement is atomic and the
  log is only cleared after the snapshot lands), so recovery is always
  possible from *some* consistent pair.
* Recovery (:mod:`repro.wal.recovery`) loads the snapshot, then redoes
  the log suffix up to the last committed record.

Log appends are billed as ``wal_writes`` (each record is a forced
block write at Table 4A's ``t_write`` rate — the durability overhead
scenario E13 measures); recovery scans bill ``wal_reads``.

Crash injection: when a :class:`~repro.faults.FaultInjector` is bound,
every append consults ``injector.on_commit`` *before* the record
reaches the store. A drawn crash therefore kills the workload after
the in-memory apply but before the commit — the classic window — and
the operation correctly vanishes on recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.exceptions import RecoveryError
from repro.storage.page import DEFAULT_BLOCK_SIZE
from repro.wal.records import Record, decode_stream, frame, schema_spec, unframe
from repro.wal.stable import InMemoryStableStore


@dataclass
class CheckpointReport:
    """What one fuzzy checkpoint did (the checkpoint audit)."""

    #: Dirty pages forced out per relation by the buffer-pool flush.
    flushed: Dict[str, int] = field(default_factory=dict)
    #: Log records truncated after the snapshot landed.
    records_truncated: int = 0
    #: Blocks charged for writing the snapshot.
    snapshot_blocks: int = 0


class WriteAheadLog:
    """Append-only redo log over a pluggable stable store.

    ``stats`` and ``injector`` are usually bound by the
    :class:`~repro.storage.database.Database` the log is attached to
    (:meth:`bind`), so WAL traffic lands on the same cost ledger and
    the same fault plan as the heap I/O it protects.
    """

    def __init__(
        self,
        store: Optional[object] = None,
        stats: Optional[object] = None,
        injector: Optional[object] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        self.store = store if store is not None else InMemoryStableStore()
        self.stats = stats
        self.injector = injector
        self.block_size = block_size
        self.records_appended = 0
        self.records_read = 0
        self.checkpoints = 0

    def bind(self, stats: object, injector: Optional[object] = None) -> None:
        """Adopt a database's ledger/fault plan (explicit ones win)."""
        if self.stats is None:
            self.stats = stats
        if self.injector is None and injector is not None:
            self.injector = injector

    # ------------------------------------------------------------------
    # append path
    # ------------------------------------------------------------------
    def _blocks(self, text_length: int) -> int:
        return max(1, -(-text_length // self.block_size))

    def _append(self, record: Record) -> None:
        if self.injector is not None:
            self.injector.on_commit(f"wal:{record[0]}")
        line = frame(record)
        self.store.append(line)
        if self.stats is not None:
            self.stats.charge_wal_write(self._blocks(len(line)))
        self.records_appended += 1

    def log_create(self, name: str, schema) -> None:
        self._append(("create", name, schema_spec(schema)))

    def log_drop(self, name: str) -> None:
        self._append(("drop", name))

    def log_insert(self, file_name: str, record_id, row: Tuple) -> None:
        self._append(("insert", file_name, tuple(record_id), tuple(row)))

    def log_update(self, file_name: str, record_id, row: Tuple) -> None:
        self._append(("update", file_name, tuple(record_id), tuple(row)))

    def log_delete(self, file_name: str, record_id) -> None:
        self._append(("delete", file_name, tuple(record_id)))

    def log_batch(self, file_name: str, entries) -> None:
        """One record for a whole batch-REPLACE pass (block-level op)."""
        self._append(
            (
                "batch",
                file_name,
                tuple((tuple(rid), tuple(row)) for rid, row in entries),
            )
        )

    def log_load(self, file_name: str, rows) -> None:
        self._append(("load", file_name, tuple(tuple(row) for row in rows)))

    def log_truncate(self, file_name: str) -> None:
        self._append(("truncate", file_name))

    def log_index(
        self, relation_name: str, kind: str, key_field: str, param: int
    ) -> None:
        """Record an index build; ``param`` is fanout (isam) or the
        *requested* bucket count (hash), so replay derives the same
        structure from the same heap state."""
        self._append(("index", relation_name, kind, key_field, param))

    def log_epoch(self, epoch) -> None:
        """Journal one applied traffic epoch (duck-types TrafficEpoch)."""
        deltas = tuple(
            (d.source, d.target, d.new_cost) for d in epoch.deltas
        )
        self._append(
            (
                "epoch",
                epoch.number,
                deltas,
                tuple(epoch.previous_fingerprint),
                tuple(epoch.fingerprint),
                epoch.minutes,
            )
        )

    def handle_epoch(self, epoch) -> None:
        """Listener hook: lets the log subscribe to a TrafficFeed."""
        self.log_epoch(epoch)

    # ------------------------------------------------------------------
    # read path (recovery)
    # ------------------------------------------------------------------
    def records(self, charge: bool = True) -> Iterator[Record]:
        """Committed records in append order, truncating a torn tail."""
        for record in decode_stream(self.store.lines()):
            self.records_read += 1
            if charge and self.stats is not None:
                self.stats.charge_wal_read()
            yield record

    def read_snapshot(self, charge: bool = True) -> Optional[Record]:
        """Decode the checkpoint snapshot (None when never checkpointed)."""
        text = self.store.read_snapshot()
        if text is None:
            return None
        record = unframe(text)
        if record is None or record[0] != "snapshot":
            raise RecoveryError(
                "checkpoint snapshot failed its CRC frame; stable store "
                "is corrupt"
            )
        if charge and self.stats is not None:
            self.stats.charge_wal_read(self._blocks(len(text)))
        return record

    # ------------------------------------------------------------------
    # checkpoint
    # ------------------------------------------------------------------
    def checkpoint(self, database) -> CheckpointReport:
        """Fuzzy checkpoint: flush the pool, snapshot, truncate the log.

        The injector is consulted once at the start (a drawn crash
        kills the checkpoint before it changes anything durable) and
        then per dirty page inside the flush; the snapshot replacement
        itself is atomic, so every kill point leaves a recoverable
        snapshot/log pair.
        """
        if self.injector is not None:
            self.injector.on_commit("wal:checkpoint")
        flushed = database.buffer_pool.flush()
        payload = ("snapshot", database.name, database.state_snapshot())
        text = frame(payload)
        blocks = self._blocks(len(text))
        self.store.write_snapshot(text)
        truncated = self.store.log_length()
        self.store.clear_log()
        if self.stats is not None:
            self.stats.charge_wal_write(blocks)
        self.checkpoints += 1
        return CheckpointReport(
            flushed=flushed,
            records_truncated=truncated,
            snapshot_blocks=blocks,
        )

    def snapshot(self) -> Dict[str, int]:
        """Counter view for reports and tests."""
        return {
            "records_appended": self.records_appended,
            "records_read": self.records_read,
            "checkpoints": self.checkpoints,
            "log_length": self.store.log_length(),
        }

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog(store={self.store!r}, "
            f"appended={self.records_appended}, "
            f"checkpoints={self.checkpoints})"
        )
