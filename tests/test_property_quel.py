"""Property-based tests for the mini-QUEL layer.

Two families: (1) the parser must never crash with anything other than
``QuelSyntaxError`` on arbitrary input; (2) QUEL retrievals over a
random relation must agree with a plain-Python evaluation of the same
qualification (a differential oracle).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quel import QuelSession, QuelSyntaxError, parse_statement
from repro.quel.parser import QuelSyntaxError as ParserError
from repro.storage.database import Database
from repro.storage.schema import ANY, FLOAT, Field, Schema


@settings(max_examples=120, deadline=None)
@given(garbage=st.text(max_size=60))
def test_parser_only_raises_syntax_errors(garbage):
    try:
        parse_statement(garbage)
    except ParserError:
        pass  # the only acceptable failure mode


@settings(max_examples=60, deadline=None)
@given(
    statement=st.sampled_from(
        [
            "RANGE OF x IS T",
            "RETRIEVE (x.a) WHERE x.b = 1",
            "RETRIEVE (total = x.a + x.b * 2) WHERE x.a < 3 AND x.b >= 0",
            "REPLACE x (a = 0) WHERE x.a > 100 OR NOT x.b = 5",
            "APPEND TO T (a = 1, b = 2.5)",
            "DELETE x WHERE x.a != 7",
        ]
    )
)
def test_known_statements_always_parse(statement):
    parse_statement(statement)


def _session_with_rows(rows):
    db = Database()
    relation = db.create_relation(
        Schema("T", [Field("a", ANY, 8), Field("b", FLOAT, 8)]), name="T"
    )
    relation.bulk_load({"a": a, "b": b} for a, b in rows)
    session = QuelSession(db)
    session.execute("RANGE OF x IS T")
    return session


_ROWS = st.lists(
    st.tuples(
        st.integers(-20, 20),
        st.floats(-50, 50, allow_nan=False),
    ),
    max_size=30,
)


@settings(max_examples=60, deadline=None)
@given(rows=_ROWS, threshold=st.integers(-20, 20))
def test_retrieve_agrees_with_python_filter(rows, threshold):
    session = _session_with_rows(rows)
    result = session.execute(
        f"RETRIEVE (x.a, x.b) WHERE x.a >= {threshold}"
    )
    expected = sorted((a, b) for a, b in rows if a >= threshold)
    assert sorted((r["a"], r["b"]) for r in result) == pytest.approx(expected)


@settings(max_examples=60, deadline=None)
@given(rows=_ROWS, low=st.integers(-20, 0), high=st.integers(0, 20))
def test_conjunction_agrees_with_python(rows, low, high):
    session = _session_with_rows(rows)
    result = session.execute(
        f"RETRIEVE (x.a) WHERE x.a > {low} AND x.a < {high}"
    )
    expected = sorted(a for a, _b in rows if low < a < high)
    assert sorted(r["a"] for r in result) == expected


@settings(max_examples=40, deadline=None)
@given(rows=_ROWS, delta=st.integers(1, 5))
def test_replace_then_retrieve_roundtrip(rows, delta):
    session = _session_with_rows(rows)
    affected = session.execute(f"REPLACE x (a = x.a + {delta})")
    assert affected == len(rows)
    result = session.execute("RETRIEVE (x.a) WHERE x.a >= -1000")
    assert sorted(r["a"] for r in result) == sorted(a + delta for a, _b in rows)


@settings(max_examples=40, deadline=None)
@given(rows=_ROWS)
def test_arithmetic_projection_agrees(rows):
    session = _session_with_rows(rows)
    result = session.execute(
        "RETRIEVE (v = x.a * 2 + x.b) WHERE x.a >= -1000"
    )
    expected = sorted(a * 2 + b for a, b in rows)
    assert sorted(r["v"] for r in result) == pytest.approx(expected)
