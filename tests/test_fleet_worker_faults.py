"""WorkerFaultPlan determinism and ShardWorker fault/lifecycle paths."""

import pytest

from repro.exceptions import TransientWorkerError, WorkerCrash
from repro.faults.workerplan import WorkerFaultPlan
from repro.fleet.partition import partition_graph
from repro.fleet.worker import ShardWorker
from repro.graphs.grid import make_paper_grid

pytestmark = [pytest.mark.fleet, pytest.mark.fleetchaos]


def one_shard_spec(side=4, seed=3):
    graph = make_paper_grid(side, "variance", seed=seed)
    return partition_graph(graph, 1, 1).shards[0]


class TestWorkerFaultPlan:
    def test_same_seed_same_schedule(self):
        a = WorkerFaultPlan(seed=11, error_rate=0.3, latency_rate=0.2)
        b = WorkerFaultPlan(seed=11, error_rate=0.3, latency_rate=0.2)
        decisions_a = [a.decide(f"site{i}") for i in range(40)]
        decisions_b = [b.decide(f"site{i}") for i in range(40)]
        assert decisions_a == decisions_b
        assert a.schedule_digest() == b.schedule_digest()
        assert any(decisions_a), "rates this high must fire at least once"

    def test_reset_replays_identical_schedule(self):
        plan = WorkerFaultPlan(seed=5, error_rate=0.4)
        first = [plan.decide("s") for _ in range(20)]
        digest = plan.schedule_digest()
        plan.reset()
        assert [plan.decide("s") for _ in range(20)] == first
        assert plan.schedule_digest() == digest

    def test_kill_point_preempts_and_consumes_no_draw(self):
        plain = WorkerFaultPlan(seed=3, error_rate=0.25, latency_rate=0.25)
        armed = WorkerFaultPlan(
            seed=3, error_rate=0.25, latency_rate=0.25, kill_at_op=5
        )
        before_plain = [plain.decide("op") for _ in range(5)]
        before_armed = [armed.decide("op") for _ in range(5)]
        # Ops before the kill see the identical transient schedule.
        assert before_armed == before_plain
        assert armed.decide("op") == "crash"
        assert (5, "op", "crash") in armed.schedule

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            WorkerFaultPlan(error_rate=1.5)
        with pytest.raises(ValueError):
            WorkerFaultPlan(error_rate=0.6, latency_rate=0.6)
        with pytest.raises(ValueError):
            WorkerFaultPlan(latency_s=-1.0)

    def test_is_noop(self):
        assert WorkerFaultPlan().is_noop
        assert not WorkerFaultPlan(error_rate=0.1).is_noop
        assert not WorkerFaultPlan(kill_at_op=0).is_noop

    def test_derive_is_stable_and_never_inherits_kills(self):
        parent = WorkerFaultPlan(
            seed=9, error_rate=0.1, hang_rate=0.05, kill_at_op=3
        )
        child_a = parent.derive(1, 0)
        child_b = parent.derive(1, 0)
        assert child_a.seed == child_b.seed
        assert child_a.seed != parent.derive(1, 1).seed
        assert child_a.seed != parent.derive(2, 0).seed
        assert child_a.error_rate == 0.1 and child_a.hang_rate == 0.05
        assert child_a.kill_at_op == -1
        # Same child seed => same schedule.
        assert [child_a.decide("s") for _ in range(15)] == [
            child_b.decide("s") for _ in range(15)
        ]


class TestWorkerInjection:
    def test_transient_error_raised_before_compute(self):
        worker = ShardWorker(
            one_shard_spec(), fault_plan=WorkerFaultPlan(error_rate=1.0)
        )
        try:
            future = worker.submit(worker.plan, (0, 0), (3, 3))
            with pytest.raises(TransientWorkerError):
                future.result()
            assert worker.faults_by_kind["error"] == 1
            # The task never reached the RouteService.
            assert worker.service.metrics.queries == 0
        finally:
            worker.shutdown()

    def test_latency_and_hang_stall_through_sleeper(self):
        for kind, plan in (
            ("latency", WorkerFaultPlan(latency_rate=1.0, latency_s=0.007)),
            ("hang", WorkerFaultPlan(hang_rate=1.0, hang_s=0.3)),
        ):
            sleeps = []
            worker = ShardWorker(
                one_shard_spec(), fault_plan=plan, sleeper=sleeps.append
            )
            try:
                result = worker.submit(worker.plan, (0, 0), (3, 3)).result()
                assert result.found
                expected = plan.latency_s if kind == "latency" else plan.hang_s
                assert sleeps == [expected]
                assert worker.faults_by_kind[kind] == 1
            finally:
                worker.shutdown()

    def test_injected_kill_crashes_worker_and_sheds_after(self):
        worker = ShardWorker(
            one_shard_spec(), fault_plan=WorkerFaultPlan(kill_at_op=0)
        )
        future = worker.submit(worker.plan, (0, 0), (3, 3))
        with pytest.raises(WorkerCrash) as exc:
            future.result()
        assert exc.value.shard_id == worker.spec.shard_id
        assert worker.crashed and not worker.alive
        # A dead replica refuses, explicitly — never raises, never drops.
        assert worker.submit(worker.plan, (0, 0), (1, 1)) is None
        assert worker.shed_unavailable == 1
        snap = worker.slo_snapshot()
        assert snap["alive"] == 0 and snap["crashed"] == 1

    def test_rate_zero_plan_is_byte_identical_to_no_plan(self):
        spec = one_shard_spec()
        quiet = ShardWorker(spec, fault_plan=WorkerFaultPlan())
        bare = ShardWorker(spec, graph=spec.graph.copy())
        try:
            a = quiet.submit(quiet.plan, (0, 0), (3, 3)).result()
            b = bare.submit(bare.plan, (0, 0), (3, 3)).result()
            assert a.found and a.cost == b.cost and a.path == b.path
            assert quiet.faults_injected == 0
            # The noop plan was never even consulted for a draw.
            assert quiet.fault_plan.op_index == 0
        finally:
            quiet.shutdown()
            bare.shutdown()


class TestWorkerLifecycle:
    def test_submit_after_shutdown_sheds_with_flag(self):
        worker = ShardWorker(one_shard_spec())
        worker.shutdown()
        assert worker.submit(worker.plan, (0, 0), (1, 1)) is None
        assert worker.shed_count == 1 and worker.shed_unavailable == 1
        assert worker.accepted == 0

    def test_submit_racing_executor_shutdown_sheds_not_raises(self):
        # Simulate the race: the executor is already down but the
        # worker's flag was not yet observed by the submitter.
        worker = ShardWorker(one_shard_spec())
        worker._executor.shutdown(wait=True)
        future = worker.submit(worker.plan, (0, 0), (1, 1))
        assert future is None
        assert worker.shed_count == 1 and worker.shed_unavailable == 1
        # Admission was rolled back: nothing accepted, nothing queued.
        assert worker.accepted == 0 and worker.queue_depth == 0

    def test_shutdown_and_kill_are_idempotent(self):
        worker = ShardWorker(one_shard_spec())
        worker.shutdown()
        worker.shutdown()
        killed = ShardWorker(one_shard_spec())
        killed.kill()
        killed.kill()
        assert not killed.alive
        killed.shutdown()

    def test_slo_snapshot_empty_latency_sample_is_zero(self, monkeypatch):
        import repro.fleet.worker as worker_module

        real = worker_module.percentile

        def strict_percentile(samples, q):
            # The guard must never lean on percentile([]) behaviour.
            assert samples, "percentile called with an empty sample"
            return real(samples, q)

        monkeypatch.setattr(worker_module, "percentile", strict_percentile)
        worker = ShardWorker(one_shard_spec())
        try:
            snap = worker.slo_snapshot()
            assert snap["p50_latency_ms"] == 0.0
            assert snap["p99_latency_ms"] == 0.0
        finally:
            worker.shutdown()
