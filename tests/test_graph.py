"""Unit tests for the Graph substrate."""

import math

import pytest

from repro.exceptions import (
    DuplicateNodeError,
    EdgeNotFoundError,
    GraphError,
    NegativeEdgeCostError,
    NodeNotFoundError,
)
from repro.graphs.graph import Edge, Graph, Node, graph_from_edges


class TestNode:
    def test_euclidean_distance(self):
        a, b = Node("a", 0.0, 0.0), Node("b", 3.0, 4.0)
        assert a.euclidean_distance(b) == pytest.approx(5.0)

    def test_manhattan_distance(self):
        a, b = Node("a", 0.0, 0.0), Node("b", 3.0, 4.0)
        assert a.manhattan_distance(b) == pytest.approx(7.0)

    def test_distances_are_symmetric(self):
        a, b = Node("a", -1.0, 2.5), Node("b", 3.0, -4.0)
        assert a.euclidean_distance(b) == pytest.approx(b.euclidean_distance(a))
        assert a.manhattan_distance(b) == pytest.approx(b.manhattan_distance(a))


class TestEdge:
    def test_negative_cost_rejected(self):
        with pytest.raises(NegativeEdgeCostError):
            Edge("a", "b", -0.5)

    def test_zero_cost_allowed(self):
        assert Edge("a", "b", 0.0).cost == 0.0


class TestGraphConstruction:
    def test_add_node_and_contains(self):
        graph = Graph()
        graph.add_node("a", 1.0, 2.0)
        assert "a" in graph
        assert "b" not in graph
        assert graph.node("a").x == 1.0

    def test_duplicate_node_rejected(self):
        graph = Graph()
        graph.add_node("a")
        with pytest.raises(DuplicateNodeError):
            graph.add_node("a")

    def test_add_edge_requires_both_endpoints(self):
        graph = Graph()
        graph.add_node("a")
        with pytest.raises(NodeNotFoundError):
            graph.add_edge("a", "missing", 1.0)
        with pytest.raises(NodeNotFoundError):
            graph.add_edge("missing", "a", 1.0)

    def test_self_loop_rejected(self):
        graph = Graph()
        graph.add_node("a")
        with pytest.raises(GraphError):
            graph.add_edge("a", "a", 1.0)

    def test_negative_edge_cost_rejected(self):
        graph = Graph()
        graph.add_node("a")
        graph.add_node("b")
        with pytest.raises(NegativeEdgeCostError):
            graph.add_edge("a", "b", -1.0)

    def test_undirected_edge_creates_both_directions(self):
        graph = Graph()
        graph.add_node("a")
        graph.add_node("b")
        graph.add_undirected_edge("a", "b", 2.0)
        assert graph.edge_cost("a", "b") == 2.0
        assert graph.edge_cost("b", "a") == 2.0
        assert graph.edge_count == 2

    def test_readding_edge_overwrites_cost_without_double_count(self):
        graph = Graph()
        graph.add_node("a")
        graph.add_node("b")
        graph.add_edge("a", "b", 1.0)
        graph.add_edge("a", "b", 7.0)
        assert graph.edge_cost("a", "b") == 7.0
        assert graph.edge_count == 1


class TestGraphMutation:
    def test_remove_edge(self, tiny_graph):
        tiny_graph.remove_edge("a", "b")
        assert not tiny_graph.has_edge("a", "b")
        with pytest.raises(EdgeNotFoundError):
            tiny_graph.remove_edge("a", "b")

    def test_remove_edge_updates_counts_and_reverse(self, tiny_graph):
        before = tiny_graph.edge_count
        tiny_graph.remove_edge("c", "d")
        assert tiny_graph.edge_count == before - 1
        assert ("c", 1.0) not in list(tiny_graph.predecessors("d"))

    def test_update_edge_cost(self, tiny_graph):
        tiny_graph.update_edge_cost("a", "b", 9.0)
        assert tiny_graph.edge_cost("a", "b") == 9.0

    def test_update_edge_cost_missing_edge(self, tiny_graph):
        with pytest.raises(EdgeNotFoundError):
            tiny_graph.update_edge_cost("e", "a", 1.0)

    def test_update_edge_cost_rejects_negative(self, tiny_graph):
        with pytest.raises(NegativeEdgeCostError):
            tiny_graph.update_edge_cost("a", "b", -2.0)


class TestGraphQueries:
    def test_neighbors_order_is_insertion_order(self, tiny_graph):
        assert [v for v, _ in tiny_graph.neighbors("a")] == ["b", "c"]

    def test_neighbors_missing_node(self, tiny_graph):
        with pytest.raises(NodeNotFoundError):
            list(tiny_graph.neighbors("nope"))

    def test_neighbors_validates_eagerly(self, tiny_graph):
        # The call itself must raise — historically these were
        # generators, so the error was deferred until first iteration
        # and a never-consumed iterator for a missing node passed
        # silently.
        with pytest.raises(NodeNotFoundError):
            tiny_graph.neighbors("nope")

    def test_predecessors_validates_eagerly(self, tiny_graph):
        with pytest.raises(NodeNotFoundError):
            tiny_graph.predecessors("nope")

    def test_predecessors(self, tiny_graph):
        predecessors = dict(tiny_graph.predecessors("d"))
        assert predecessors == {"b": 5.0, "c": 1.0}

    def test_degree(self, tiny_graph):
        assert tiny_graph.degree("a") == 2
        assert tiny_graph.degree("e") == 0

    def test_len_and_counts(self, tiny_graph):
        assert len(tiny_graph) == 5
        assert tiny_graph.node_count == 5
        assert tiny_graph.edge_count == 6

    def test_average_degree(self, tiny_graph):
        assert tiny_graph.average_degree() == pytest.approx(6 / 5)

    def test_average_degree_empty_graph(self):
        assert Graph().average_degree() == 0.0

    def test_edges_iteration_total(self, tiny_graph):
        assert len(list(tiny_graph.edges())) == tiny_graph.edge_count

    def test_coordinates(self, tiny_graph):
        assert tiny_graph.coordinates("c") == (2.0, 0.0)


class TestPathHelpers:
    def test_path_cost(self, tiny_graph):
        assert tiny_graph.path_cost(["a", "b", "c", "d", "e"]) == pytest.approx(4.0)

    def test_path_cost_single_node(self, tiny_graph):
        assert tiny_graph.path_cost(["a"]) == 0.0

    def test_path_cost_missing_edge(self, tiny_graph):
        with pytest.raises(EdgeNotFoundError):
            tiny_graph.path_cost(["a", "e"])

    def test_is_valid_path(self, tiny_graph):
        assert tiny_graph.is_valid_path(["a", "b", "d"])
        assert not tiny_graph.is_valid_path(["a", "d"])
        assert not tiny_graph.is_valid_path([])
        assert not tiny_graph.is_valid_path(["a", "missing"])


class TestGraphTransforms:
    def test_copy_is_independent(self, tiny_graph):
        duplicate = tiny_graph.copy()
        duplicate.update_edge_cost("a", "b", 99.0)
        assert tiny_graph.edge_cost("a", "b") == 1.0
        assert duplicate.node_count == tiny_graph.node_count
        assert duplicate.edge_count == tiny_graph.edge_count

    def test_reversed_flips_every_edge(self, tiny_graph):
        flipped = tiny_graph.reversed()
        assert flipped.has_edge("b", "a")
        assert not flipped.has_edge("a", "b")
        assert flipped.edge_count == tiny_graph.edge_count

    def test_double_reverse_restores(self, tiny_graph):
        twice = tiny_graph.reversed().reversed()
        original = {(e.source, e.target, e.cost) for e in tiny_graph.edges()}
        restored = {(e.source, e.target, e.cost) for e in twice.edges()}
        assert original == restored

    def test_subgraph_keeps_internal_edges_only(self, tiny_graph):
        sub = tiny_graph.subgraph(["a", "b", "c"])
        assert sub.node_count == 3
        assert sub.has_edge("a", "b")
        assert sub.has_edge("b", "c")
        assert not sub.has_edge("c", "d")

    def test_subgraph_copies_coordinates_and_costs(self, tiny_graph):
        sub = tiny_graph.subgraph(["a", "b", "c"])
        assert sub.coordinates("b") == tiny_graph.coordinates("b")
        assert sub.edge_cost("a", "c") == tiny_graph.edge_cost("a", "c")

    def test_subgraph_has_fresh_uid_and_is_independent(self, tiny_graph):
        sub = tiny_graph.subgraph(["a", "b", "c"])
        assert sub.uid != tiny_graph.uid
        assert sub.fingerprint != tiny_graph.fingerprint
        sub.update_edge_cost("a", "b", 42.0)
        assert tiny_graph.edge_cost("a", "b") == 1.0

    def test_subgraph_accepts_name_and_defaults_to_suffix(self, tiny_graph):
        assert tiny_graph.subgraph(["a"], name="shard0").name == "shard0"
        assert tiny_graph.subgraph(["a"]).name == "tiny-sub"

    def test_subgraph_unknown_node_raises(self, tiny_graph):
        with pytest.raises(NodeNotFoundError):
            tiny_graph.subgraph(["a", "missing"])

    def test_subgraph_keeps_parent_insertion_order(self, tiny_graph):
        # Membership order in the argument must not matter: nodes come
        # out in parent insertion order, so repeated cuts are identical.
        sub = tiny_graph.subgraph(["c", "a", "b"])
        assert list(sub.node_ids()) == ["a", "b", "c"]

    def test_subgraph_tolerates_duplicate_ids(self, tiny_graph):
        sub = tiny_graph.subgraph(["a", "a", "b"])
        assert sub.node_count == 2


class TestGraphFromEdges:
    def test_builds_nodes_on_first_sight(self):
        graph = graph_from_edges([("x", "y", 1.0), ("y", "z", 2.0)])
        assert graph.node_count == 3
        assert graph.edge_cost("y", "z") == 2.0

    def test_applies_coordinates(self):
        graph = graph_from_edges(
            [("x", "y", 1.0)], coordinates={"x": (5.0, 6.0)}
        )
        assert graph.coordinates("x") == (5.0, 6.0)
        assert graph.coordinates("y") == (0.0, 0.0)
