"""Tests for the ISAM index."""

import pytest

from repro.exceptions import IndexError_
from repro.storage.buffer import BufferPool
from repro.storage.heapfile import HeapFile
from repro.storage.iostats import IOStatistics
from repro.storage.isam import ISAMIndex
from repro.storage.schema import ANY, FLOAT, Field, Schema


def make_indexed_heap(keys, fanout=10):
    stats = IOStatistics()
    pool = BufferPool(stats, capacity=0)
    schema = Schema("t", [Field("k", ANY, 8), Field("v", FLOAT, 8)])
    heap = HeapFile("t", schema, pool, stats, block_size=4096)
    for key in keys:
        heap.insert({"k": key, "v": float(hash(str(key)) % 100)})
    index = ISAMIndex(heap, "k", stats, fanout=fanout)
    index.build()
    return heap, index, stats


class TestBuild:
    def test_levels_match_table_4a(self):
        _heap, index, _stats = make_indexed_heap(range(900), fanout=10)
        assert index.levels == 3  # 900 -> 90 -> 9 -> 1: I_l = 3

    def test_single_page_index(self):
        _heap, index, _stats = make_indexed_heap(range(5), fanout=10)
        assert index.levels == 1

    def test_empty_heap_builds(self):
        _heap, index, _stats = make_indexed_heap([], fanout=10)
        assert index.probe("anything") is None

    def test_duplicate_keys_rejected(self):
        with pytest.raises(IndexError_):
            make_indexed_heap([1, 1, 2])

    def test_unbuilt_probe_raises(self):
        stats = IOStatistics()
        pool = BufferPool(stats, capacity=0)
        schema = Schema("t", [Field("k", ANY, 8), Field("v", FLOAT, 8)])
        heap = HeapFile("t", schema, pool, stats)
        index = ISAMIndex(heap, "k", stats)
        with pytest.raises(IndexError_):
            index.probe(1)

    def test_fanout_validated(self):
        stats = IOStatistics()
        pool = BufferPool(stats, capacity=0)
        schema = Schema("t", [Field("k", ANY, 8), Field("v", FLOAT, 8)])
        heap = HeapFile("t", schema, pool, stats)
        with pytest.raises(IndexError_):
            ISAMIndex(heap, "k", stats, fanout=1)


class TestProbe:
    def test_probe_finds_every_key(self):
        heap, index, _stats = make_indexed_heap(range(0, 200, 3))
        for key in range(0, 200, 3):
            rid = index.probe(key)
            assert rid is not None
            assert heap.read(rid)["k"] == key

    def test_probe_missing_key(self):
        _heap, index, _stats = make_indexed_heap(range(10))
        assert index.probe(999) is None

    def test_probe_equals_scan_results(self):
        """Index retrieval must agree with a full scan."""
        heap, index, _stats = make_indexed_heap([5, 1, 9, 3, 7])
        by_scan = {v["k"]: rid for rid, v in heap.scan()}
        for key, rid in by_scan.items():
            assert index.probe(key) == rid

    def test_probe_charges_one_read_per_level(self):
        _heap, index, stats = make_indexed_heap(range(900))
        stats.reset()
        index.probe(450)
        assert stats.block_reads == index.levels

    def test_fetch_returns_tuple(self):
        _heap, index, _stats = make_indexed_heap(range(20))
        assert index.fetch(7)["k"] == 7
        assert index.fetch(999) is None

    def test_tuple_keys_supported(self):
        """Grid node ids are (row, col) tuples."""
        keys = [(r, c) for r in range(5) for c in range(5)]
        _heap, index, _stats = make_indexed_heap(keys)
        assert index.fetch((3, 4))["k"] == (3, 4)


class TestUpdateInsert:
    def test_update_via_index(self):
        heap, index, _stats = make_indexed_heap(range(10))
        assert index.update_via_index(4, {"k": 4, "v": 99.0})
        assert index.fetch(4)["v"] == 99.0

    def test_update_via_index_missing_key(self):
        _heap, index, _stats = make_indexed_heap(range(10))
        assert not index.update_via_index(42, {"k": 42, "v": 0.0})

    def test_overflow_insert_and_probe(self):
        heap, index, _stats = make_indexed_heap(range(0, 100, 2))
        rid = heap.insert({"k": 75, "v": 0.0})
        index.insert(75, rid)
        assert index.probe(75) == rid

    def test_overflow_duplicate_rejected(self):
        heap, index, _stats = make_indexed_heap(range(10))
        rid = heap.insert({"k": 5, "v": 0.0})
        with pytest.raises(IndexError_):
            index.insert(5, rid)

    def test_keys_sorted(self):
        _heap, index, _stats = make_indexed_heap([9, 2, 7, 1])
        assert index.keys() == [1, 2, 7, 9]
