"""Dijkstra as an EQUEL program — the paper's literal methodology.

"First, the algorithms implemented in EQUEL were run on the graphs and
we obtained measurements of processing time."  EQUEL is QUEL embedded
in a host language: the host drives the control flow, the database does
every data operation. This example writes single-pair Dijkstra exactly
that way against the simulated INGRES — every fetch, relaxation and
status flip is a QUEL statement executed by :class:`repro.quel.QuelSession`,
and the I/O ledger prices the whole run in Table 4A units.

Run:  python examples/equel_program.py
"""

from repro.engine.relational_graph import RelationalGraph
from repro.graphs.grid import make_paper_grid, paper_queries
from repro.quel import QuelSession


def equel_dijkstra(session, source, destination, node_count):
    """Single-pair Dijkstra with all data operations in QUEL."""
    # C4: open the source node.
    session.execute(
        f'REPLACE r (status = "open", path_cost = 0) '
        f'WHERE r.node_id = "{source!r}"'
    )
    iterations = 0
    while True:
        # C5: select the best open node — a RETRIEVE of the frontier;
        # the host picks the minimum (EQUEL's cursor loop).
        frontier = session.execute(
            'RETRIEVE (r.node_id, r.path_cost) WHERE r.status = "open"'
        )
        if not frontier:
            return None, iterations
        best = min(frontier, key=lambda row: row["path_cost"])
        if best["node_id"] == destination:
            return best["path_cost"], iterations
        iterations += 1
        if iterations > 4 * node_count:
            raise RuntimeError("EQUEL Dijkstra failed to terminate")
        # C6: move it to the explored set.
        session.execute(
            f'REPLACE r (status = "closed") '
            f'WHERE r.node_id = "{best["node_id"]!r}"'
        )
        # C7: fetch the adjacency list — the join with S.
        neighbors = session.execute(
            f'RETRIEVE (s.end, s.cost) WHERE r.node_id = s.begin '
            f'AND r.node_id = "{best["node_id"]!r}"'
        )
        # C8: conditional keyed REPLACE per neighbor.
        for edge in neighbors:
            new_cost = best["path_cost"] + edge["cost"]
            session.execute(
                f'REPLACE r (status = "open", path_cost = {new_cost!r}, '
                f'path = "{best["node_id"]!r}") '
                f'WHERE r.node_id = "{edge["end"]!r}" '
                f'AND r.path_cost > {new_cost!r}'
            )


def main() -> None:
    k = 10
    graph = make_paper_grid(k, "variance")
    query = paper_queries(k)["diagonal"]
    rgraph = RelationalGraph(graph)
    rgraph.fresh_node_relation(populate=True)  # R1, indexed on node_id
    rgraph.stats.reset()

    session = QuelSession(rgraph.db)
    session.execute("RANGE OF s IS S")
    session.execute("RANGE OF r IS R1")

    print(f"EQUEL Dijkstra on the {k}x{k} variance grid, diagonal query\n")
    cost, iterations = equel_dijkstra(
        session, query.source, query.destination, graph.node_count
    )
    stats = rgraph.stats
    print(f"shortest path cost: {cost:.3f}")
    print(f"iterations:         {iterations}")
    print(f"I/O ledger:         {stats.block_reads} reads, "
          f"{stats.block_writes} writes, {stats.tuple_updates} updates")
    print(f"execution cost:     {stats.cost:.1f} Table 4A units")

    # Sanity: the in-memory planner agrees.
    from repro.core.dijkstra import dijkstra_search

    reference = dijkstra_search(graph, query.source, query.destination)
    print(f"\nin-memory Dijkstra: cost {reference.cost:.3f} over "
          f"{reference.iterations} iterations — "
          f"{'MATCH' if abs(reference.cost - cost) < 1e-9 else 'MISMATCH'}")
    print(
        "\nEvery data operation above — frontier retrieval, status"
        "\nflips, adjacency joins, conditional relaxations — executed as"
        "\na parsed QUEL statement against the paged storage engine,"
        "\nexactly the architecture the paper measured in 1993."
    )


if __name__ == "__main__":
    main()
