"""Tests for the transitive-closure family and all-pairs algorithms."""

import math

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.closure.allpairs import floyd_warshall_paths, repeated_dijkstra_paths
from repro.closure.reachability import (
    dfs_closure,
    logarithmic_closure,
    seminaive_closure,
    warren_closure,
    warshall_closure,
)
from repro.graphs.graph import Graph, graph_from_edges
from repro.graphs.grid import make_grid, make_paper_grid

ALL_CLOSURES = (
    seminaive_closure,
    warshall_closure,
    warren_closure,
    logarithmic_closure,
    dfs_closure,
)


def chain_graph():
    return graph_from_edges([("a", "b", 1.0), ("b", "c", 1.0), ("c", "d", 1.0)])


def cycle_graph():
    return graph_from_edges([(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)])


class TestReachabilityBasics:
    @pytest.mark.parametrize("closure_func", ALL_CLOSURES)
    def test_chain(self, closure_func):
        result = closure_func(chain_graph())
        assert result.closure["a"] == frozenset({"b", "c", "d"})
        assert result.closure["d"] == frozenset()
        assert result.reaches("a", "d")
        assert not result.reaches("d", "a")

    @pytest.mark.parametrize("closure_func", ALL_CLOSURES)
    def test_cycle_reaches_itself(self, closure_func):
        result = closure_func(cycle_graph())
        for node in range(3):
            assert result.reaches(node, node)
        assert result.pair_count() == 9

    @pytest.mark.parametrize("closure_func", ALL_CLOSURES)
    def test_empty_edges(self, closure_func):
        graph = Graph()
        graph.add_node("solo")
        result = closure_func(graph)
        assert result.closure["solo"] == frozenset()

    @pytest.mark.parametrize("closure_func", ALL_CLOSURES)
    def test_matches_networkx_on_grid(self, closure_func):
        graph = make_grid(4)
        nxg = nx.DiGraph(
            (e.source, e.target) for e in graph.edges()
        )
        # TC convention: (u, u) is in the closure iff a non-empty cycle
        # returns to u — networkx's descendants() excludes that case.
        expected = {}
        for node in nxg.nodes:
            reachable = set(nx.descendants(nxg, node))
            if any(
                nx.has_path(nxg, successor, node)
                for successor in nxg.successors(node)
            ):
                reachable.add(node)
            expected[node] = frozenset(reachable)
        result = closure_func(graph)
        assert result.closure == expected

    def test_operation_counters_positive(self):
        graph = make_grid(4)
        for closure_func in ALL_CLOSURES:
            assert closure_func(graph).operations > 0


@settings(max_examples=40, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 8), st.integers(0, 8)),
        max_size=30,
    )
)
def test_property_all_closure_algorithms_agree(edges):
    graph = Graph()
    for node in range(9):
        graph.add_node(node)
    for u, v in edges:
        if u != v:
            graph.add_edge(u, v, 1.0)
    results = [closure_func(graph).closure for closure_func in ALL_CLOSURES]
    assert all(result == results[0] for result in results)


class TestAllPairs:
    def test_floyd_warshall_matches_dijkstra_costs(self):
        graph = make_paper_grid(5, "variance")
        table = floyd_warshall_paths(graph)
        from repro.core.dijkstra import dijkstra_sssp

        for source in [(0, 0), (2, 3)]:
            distances = dijkstra_sssp(graph, source)
            for destination, expected in distances.items():
                assert table.cost(source, destination) == pytest.approx(expected)

    def test_repeated_dijkstra_matches_floyd_warshall(self):
        graph = make_paper_grid(4, "variance")
        fw = floyd_warshall_paths(graph)
        rd = repeated_dijkstra_paths(graph)
        for source in graph.node_ids():
            for destination in graph.node_ids():
                assert rd.cost(source, destination) == pytest.approx(
                    fw.cost(source, destination)
                )

    @pytest.mark.parametrize("builder", [floyd_warshall_paths, repeated_dijkstra_paths])
    def test_path_extraction_is_valid_and_optimal(self, builder):
        graph = make_paper_grid(4, "variance")
        table = builder(graph)
        for source in [(0, 0), (3, 0)]:
            for destination in [(3, 3), (0, 2)]:
                path = table.path(source, destination)
                assert path is not None
                assert graph.is_valid_path(path)
                assert graph.path_cost(path) == pytest.approx(
                    table.cost(source, destination)
                )

    def test_unreachable_pair(self, disconnected_graph):
        table = floyd_warshall_paths(disconnected_graph)
        assert math.isinf(table.cost("a", "z"))
        assert table.path("a", "z") is None

    def test_self_pair(self):
        table = floyd_warshall_paths(chain_graph())
        assert table.cost("a", "a") == 0.0
        assert table.path("a", "a") == ["a"]

    def test_missing_source_raises(self):
        from repro.exceptions import NodeNotFoundError

        table = floyd_warshall_paths(chain_graph())
        with pytest.raises(NodeNotFoundError):
            table.cost("nope", "a")

    def test_pair_count(self):
        table = floyd_warshall_paths(chain_graph())
        assert table.pair_count() == 6  # a->bcd, b->cd, c->d


class TestAblationNumbers:
    def test_single_pair_is_far_cheaper_than_any_closure(self):
        """The paper's motivation, as a hard assertion."""
        from repro.core.astar import astar_search
        from repro.core.estimators import ManhattanEstimator

        graph = make_paper_grid(10, "variance")
        single = astar_search(
            graph, (0, 0), (9, 9), ManhattanEstimator()
        ).stats.edges_relaxed
        for builder in (floyd_warshall_paths, repeated_dijkstra_paths):
            assert builder(graph).operations > 20 * single
