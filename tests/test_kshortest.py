"""Tests for Yen's k-shortest paths and diverse alternatives."""

import pytest

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PlannerError
from repro.core.estimators import ManhattanEstimator
from repro.core.kshortest import (
    diverse_alternatives,
    k_shortest_paths,
    path_overlap,
)
from repro.graphs.graph import Graph, graph_from_edges
from repro.graphs.grid import make_grid, make_paper_grid


@pytest.fixture
def diamond():
    """Two parallel routes a->d: top costs 2, bottom costs 3."""
    return graph_from_edges(
        [
            ("a", "t", 1.0), ("t", "d", 1.0),
            ("a", "b", 1.0), ("b", "d", 2.0),
        ]
    )


class TestBasics:
    def test_first_path_is_optimal(self, diamond):
        paths = k_shortest_paths(diamond, "a", "d", 1)
        assert paths[0].path == ["a", "t", "d"]
        assert paths[0].cost == pytest.approx(2.0)

    def test_second_path(self, diamond):
        paths = k_shortest_paths(diamond, "a", "d", 2)
        assert len(paths) == 2
        assert paths[1].path == ["a", "b", "d"]
        assert paths[1].cost == pytest.approx(3.0)

    def test_exhausts_loopless_paths(self, diamond):
        paths = k_shortest_paths(diamond, "a", "d", 10)
        assert len(paths) == 2  # only two loopless routes exist

    def test_costs_nondecreasing(self, grid10_variance):
        paths = k_shortest_paths(grid10_variance, (0, 0), (4, 4), 6)
        costs = [p.cost for p in paths]
        assert costs == sorted(costs)

    def test_paths_are_valid_and_loopless(self, grid10_variance):
        paths = k_shortest_paths(grid10_variance, (0, 0), (4, 4), 6)
        for result in paths:
            assert grid10_variance.is_valid_path(result.path)
            assert len(set(result.path)) == len(result.path)  # loopless
            assert grid10_variance.path_cost(result.path) == pytest.approx(
                result.cost
            )

    def test_paths_are_distinct(self, grid10_variance):
        paths = k_shortest_paths(grid10_variance, (0, 0), (4, 4), 8)
        assert len({tuple(p.path) for p in paths}) == len(paths)

    def test_original_graph_untouched(self, diamond):
        edges_before = {(e.source, e.target, e.cost) for e in diamond.edges()}
        k_shortest_paths(diamond, "a", "d", 5)
        edges_after = {(e.source, e.target, e.cost) for e in diamond.edges()}
        assert edges_before == edges_after

    def test_unreachable(self, disconnected_graph):
        assert k_shortest_paths(disconnected_graph, "a", "z", 3) == []

    def test_k_validated(self, diamond):
        with pytest.raises(PlannerError):
            k_shortest_paths(diamond, "a", "d", 0)

    def test_estimator_speeds_spur_searches_same_result(self):
        graph = make_paper_grid(6, "variance")
        plain = k_shortest_paths(graph, (0, 0), (5, 5), 4)
        guided = k_shortest_paths(
            graph, (0, 0), (5, 5), 4, estimator=ManhattanEstimator()
        )
        assert [p.cost for p in plain] == pytest.approx(
            [p.cost for p in guided]
        )


class TestAgainstNetworkx:
    def test_matches_networkx_shortest_simple_paths(self):
        graph = make_paper_grid(5, "variance")
        nxg = nx.DiGraph()
        for edge in graph.edges():
            nxg.add_edge(edge.source, edge.target, weight=edge.cost)
        expected = []
        generator = nx.shortest_simple_paths(nxg, (0, 0), (4, 4), weight="weight")
        for _ in range(5):
            expected.append(next(generator))
        ours = k_shortest_paths(graph, (0, 0), (4, 4), 5)
        expected_costs = [graph.path_cost(p) for p in expected]
        assert [p.cost for p in ours] == pytest.approx(expected_costs)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000))
def test_property_yen_matches_networkx_on_random_graphs(seed):
    from repro.graphs.random_graphs import random_sparse_directed

    graph = random_sparse_directed(12, 20, seed=seed)
    nxg = nx.DiGraph()
    for edge in graph.edges():
        nxg.add_edge(edge.source, edge.target, weight=edge.cost)
    generator = nx.shortest_simple_paths(nxg, 0, 6, weight="weight")
    expected_costs = []
    for _ in range(4):
        try:
            expected_costs.append(graph.path_cost(next(generator)))
        except StopIteration:
            break
    ours = k_shortest_paths(graph, 0, 6, 4)
    assert [p.cost for p in ours] == pytest.approx(expected_costs)


class TestOverlapAndDiversity:
    def test_path_overlap_extremes(self):
        assert path_overlap(["a", "b", "c"], ["a", "b", "c"]) == 1.0
        assert path_overlap(["a", "b"], ["x", "y"]) == 0.0
        assert path_overlap(["a"], ["a"]) == 0.0  # no edges

    def test_partial_overlap(self):
        assert path_overlap(["a", "b", "c"], ["a", "b", "z"]) == pytest.approx(0.5)

    def test_diverse_alternatives_respect_cap(self):
        graph = make_grid(8)
        routes = diverse_alternatives(
            graph, (0, 0), (7, 7), count=3, max_overlap=0.5,
            estimator=ManhattanEstimator(),
        )
        assert routes, "at least the optimum must be returned"
        for i, a in enumerate(routes):
            for b in routes[i + 1:]:
                assert path_overlap(a.path, b.path) <= 0.5

    def test_diverse_first_route_is_optimal(self, grid10_variance):
        routes = diverse_alternatives(grid10_variance, (0, 0), (5, 5), count=2)
        best = k_shortest_paths(grid10_variance, (0, 0), (5, 5), 1)[0]
        assert routes[0].cost == pytest.approx(best.cost)

    def test_overlap_cap_validated(self, diamond):
        with pytest.raises(PlannerError):
            diverse_alternatives(diamond, "a", "d", max_overlap=2.0)
