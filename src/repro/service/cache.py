"""LRU query-result cache with edge-granular traffic invalidation.

The paper's experiments run one isolated query at a time, so nothing in
the original system ever reuses an answer. A deployed ATIS answers the
same commute questions over and over between traffic updates, which is
exactly the regime Wu et al.'s experimental evaluation of road-network
serving identifies as cache-dominated. This module supplies the missing
piece: a bounded LRU keyed on everything that determines the answer —

    (graph fingerprint, source, destination, algorithm, estimator, weight)

The graph fingerprint is ``Graph.fingerprint`` — a ``(uid, version)``
pair whose version component is bumped by every edge-cost refresh — so
a traffic update can never serve a stale route even if the caller
forgets to invalidate explicitly.

Fingerprint keying alone, however, forces the whole-graph nuke this
subsystem replaces: after any update the new fingerprint misses every
old entry, live or not. :meth:`RouteCache.invalidate_edges` fixes that
with an **inverted index from directed edges to cached answers**. A
traffic epoch evicts only the answers actually affected —

* entries whose path crosses a touched edge (any change re-prices them);
* for cost *decreases*, entries whose cached cost exceeds the admissible
  lower bound ``lb(s, u) + new_cost + lb(v, d)`` through the cheaper
  edge ``(u, v)`` (a cheaper edge elsewhere can only steal the optimum
  if a route through it could beat the cached cost);
* entries cached without path provenance (``edges=None``), which are
  evicted conservatively on any change —

and **re-keys every survivor to the new fingerprint**, so untouched
answers keep serving warm hits across updates.

The cache sits entirely *above* the planners and the storage engine:
paper-mode I/O accounting is untouched, and a hit performs zero block
reads or writes.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.graphs.graph import CostDelta, Graph, NodeId

#: Everything that determines a query's answer.
QueryKey = Tuple[Tuple[int, int], NodeId, NodeId, str, str, float]

#: A directed edge as the invalidation index keys it.
EdgeKey = Tuple[NodeId, NodeId]


def query_key(
    graph: Graph,
    source: NodeId,
    destination: NodeId,
    algorithm: str,
    estimator: str,
    weight: float,
) -> QueryKey:
    """Build the canonical cache key for one query."""
    return (graph.fingerprint, source, destination, algorithm, estimator, weight)


@dataclass
class CacheEntry:
    """One cached answer plus the provenance the invalidator needs."""

    result: object
    cost: float
    edges: Optional[FrozenSet[EdgeKey]]


@dataclass(frozen=True)
class InvalidationReport:
    """Outcome of one edge-granular invalidation pass."""

    evicted: int
    rekeyed: int

    def __int__(self) -> int:
        return self.evicted


class RouteCache:
    """Thread-safe bounded LRU of computed route results.

    ``capacity <= 0`` disables caching entirely (every lookup misses and
    nothing is stored), mirroring the storage engine's ``capacity=0``
    pass-through buffer-pool semantics.

    ``decrease_bound`` selects how cost *decreases* are handled:
    ``"euclidean"`` (default) keeps entries whose cached cost the
    cheaper edge provably cannot beat, using straight-line distance as
    the admissible lower bound (sound whenever every edge costs at
    least the distance between its endpoints — true for the paper's
    uniform and variance grids and the Minneapolis map); ``None`` falls
    back to evicting every entry of the graph on any decrease, which is
    always sound (use it for skewed/sub-metric cost models).
    """

    def __init__(
        self,
        capacity: int = 1024,
        decrease_bound: Optional[str] = "euclidean",
    ) -> None:
        self.capacity = int(capacity)
        if decrease_bound not in (None, "euclidean"):
            raise ValueError(
                f"unknown decrease_bound {decrease_bound!r}; "
                "expected 'euclidean' or None"
            )
        self.decrease_bound = decrease_bound
        self._entries: "OrderedDict[QueryKey, CacheEntry]" = OrderedDict()
        #: (uid, u, v) -> keys of entries whose path crosses the edge.
        self._edge_index: Dict[Tuple[int, NodeId, NodeId], Set[QueryKey]] = {}
        #: uid -> every key cached for that graph.
        self._by_uid: Dict[int, Set[QueryKey]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.rekeyed = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------
    def get(self, key: QueryKey) -> Optional[object]:
        """Return the cached result for ``key`` (refreshing recency) or None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry.result
            self.misses += 1
            return None

    def put(
        self,
        key: QueryKey,
        result: object,
        edges: Optional[Iterable[EdgeKey]] = None,
        cost: Optional[float] = None,
    ) -> None:
        """Store a result, evicting the least recently used on overflow.

        ``edges`` is the directed edge sequence of the cached route —
        the provenance the edge-granular invalidator indexes. Entries
        stored without it remain correct but are evicted conservatively
        on *any* update of their graph. ``cost`` defaults to
        ``result.cost`` (``inf`` for unreachable answers, which makes
        the decrease bound evict them whenever a cheaper edge might
        connect the pair).
        """
        if self.capacity <= 0:
            return
        if cost is None:
            cost = getattr(result, "cost", float("inf"))
        edge_set = frozenset(edges) if edges is not None else None
        with self._lock:
            if key in self._entries:
                self._unindex(key)
                self._entries.move_to_end(key)
            self._entries[key] = CacheEntry(result, cost, edge_set)
            self._index(key, edge_set)
            while len(self._entries) > self.capacity:
                victim = next(iter(self._entries))
                self._unindex(victim)
                del self._entries[victim]
                self.evictions += 1

    # ------------------------------------------------------------------
    # index bookkeeping (call with the lock held)
    # ------------------------------------------------------------------
    def _index(self, key: QueryKey, edge_set: Optional[FrozenSet[EdgeKey]]) -> None:
        uid = key[0][0]
        self._by_uid.setdefault(uid, set()).add(key)
        if edge_set:
            for u, v in edge_set:
                self._edge_index.setdefault((uid, u, v), set()).add(key)

    def _unindex(self, key: QueryKey) -> None:
        uid = key[0][0]
        keys = self._by_uid.get(uid)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_uid[uid]
        entry = self._entries.get(key)
        edge_set = entry.edges if entry is not None else None
        if edge_set:
            for u, v in edge_set:
                slot = self._edge_index.get((uid, u, v))
                if slot is not None:
                    slot.discard(key)
                    if not slot:
                        del self._edge_index[(uid, u, v)]

    # ------------------------------------------------------------------
    # invalidation (the dynamic-traffic loop)
    # ------------------------------------------------------------------
    def invalidate_graph(self, graph: Graph) -> int:
        """Drop every entry computed against any version of ``graph``.

        Returns the number of entries evicted. This is the whole-graph
        fallback the edge-granular path replaces; it remains the right
        call for structural changes (edges added or removed).
        """
        with self._lock:
            stale = list(self._by_uid.get(graph.uid, ()))
            for key in stale:
                self._unindex(key)
                del self._entries[key]
            self.invalidations += len(stale)
            return len(stale)

    def invalidate_edges(
        self,
        graph: Graph,
        deltas: Iterable[CostDelta],
        previous_fingerprint: Optional[Tuple[int, int]] = None,
        new_fingerprint: Optional[Tuple[int, int]] = None,
    ) -> InvalidationReport:
        """Apply one traffic epoch's deltas to the cached answers.

        ``previous_fingerprint`` is the graph fingerprint the epoch was
        applied *from* (defaults to ``(uid, version - 1)``, the single
        bump the epoch guard publishes). Only entries cached at exactly
        that state can be proven unaffected and re-keyed; entries from
        older states are evicted — nothing is known about the updates
        they missed.

        ``new_fingerprint`` is the fingerprint the epoch produced and
        the one survivors are re-keyed to. Callers holding a
        :class:`~repro.traffic.feed.TrafficEpoch` must pass
        ``epoch.fingerprint``: defaulting to the *live*
        ``graph.fingerprint`` is only sound when epochs are processed
        strictly in order with no updates racing ahead — if the graph
        has already moved on to a later version, the default would
        re-key this epoch's survivors straight past the intervening
        epochs' deltas without ever analysing them, leaving provably
        stale answers live at the newest fingerprint.
        """
        deltas = list(deltas)
        with self._lock:
            uid = graph.uid
            new_fp = (
                new_fingerprint if new_fingerprint is not None else graph.fingerprint
            )
            if previous_fingerprint is None:
                previous_fingerprint = (uid, new_fp[1] - 1)
            keys = self._by_uid.get(uid)
            if not keys:
                return InvalidationReport(0, 0)

            affected: Set[QueryKey] = set()
            # Any entry not cached at the epoch's starting state is dead.
            for key in keys:
                if key[0] != previous_fingerprint:
                    affected.add(key)
            if deltas:
                # Entries whose path crosses a touched edge.
                for delta in deltas:
                    affected |= self._edge_index.get(
                        (uid, delta.source, delta.target), set()
                    )
                # Entries cached without provenance: any change hits them.
                wildcard = [
                    key for key in keys if self._entries[key].edges is None
                ]
                affected.update(wildcard)
                # Cost decreases can reroute answers that never touched
                # the edge; keep only those the admissible bound clears.
                decreases = [d for d in deltas if d.decreased]
                if decreases:
                    for key in keys:
                        if key in affected:
                            continue
                        if not self._survives_decreases(graph, key, decreases):
                            affected.add(key)

            for key in affected:
                self._unindex(key)
                del self._entries[key]
            self.invalidations += len(affected)

            survivors = [key for key in list(keys) if key not in affected]
            if survivors and new_fp != previous_fingerprint:
                self._rekey(survivors, new_fp)
                self.rekeyed += len(survivors)
            return InvalidationReport(len(affected), len(survivors))

    def _survives_decreases(
        self, graph: Graph, key: QueryKey, decreases: List[CostDelta]
    ) -> bool:
        """True if no cheaper edge can possibly beat the cached cost."""
        if self.decrease_bound is None:
            return False
        entry = self._entries[key]
        if entry.cost == math.inf and entry.edges is not None:
            # A provenance-bearing "unreachable" answer: reachability is
            # structural, so no cost change can ever overturn it.
            return True
        source, destination = key[1], key[2]
        try:
            sx, sy = graph.coordinates(source)
            dx, dy = graph.coordinates(destination)
        except Exception:
            return False
        for delta in decreases:
            try:
                ux, uy = graph.coordinates(delta.source)
                vx, vy = graph.coordinates(delta.target)
            except Exception:
                return False
            detour = (
                math.hypot(sx - ux, sy - uy)
                + delta.new_cost
                + math.hypot(vx - dx, vy - dy)
            )
            if detour < entry.cost:
                return False
        return True

    def _rekey(self, survivors: List[QueryKey], new_fp: Tuple[int, int]) -> None:
        """Move survivors to the new fingerprint, preserving LRU order."""
        translation = {key: (new_fp,) + key[1:] for key in survivors}
        rebuilt: "OrderedDict[QueryKey, CacheEntry]" = OrderedDict()
        for key, entry in self._entries.items():
            rebuilt[translation.get(key, key)] = entry
        self._entries = rebuilt
        uid = new_fp[0]
        by_uid = self._by_uid.get(uid)
        for old_key, new_key in translation.items():
            by_uid.discard(old_key)
            by_uid.add(new_key)
            edge_set = self._entries[new_key].edges
            if edge_set:
                for u, v in edge_set:
                    slot = self._edge_index[(uid, u, v)]
                    slot.discard(old_key)
                    slot.add(new_key)

    def clear(self) -> None:
        """Drop everything (counters are kept)."""
        with self._lock:
            self.invalidations += len(self._entries)
            self._entries.clear()
            self._edge_index.clear()
            self._by_uid.clear()

    # ------------------------------------------------------------------
    # select-link: the inverted index read forwards
    # ------------------------------------------------------------------
    def routes_crossing(
        self, graph: Graph, links: Iterable[EdgeKey]
    ) -> List[Tuple[NodeId, NodeId, FrozenSet[EdgeKey]]]:
        """Cached routes (at the current fingerprint) crossing any link.

        The invalidator uses the edge index to find answers a cost
        change kills; select-link analysis asks the same index the
        forward question — which cached OD answers traverse this link.
        Returns ``(source, destination, edges)`` triples, one per
        distinct OD pair, considering **only** entries keyed at
        ``graph.fingerprint``: the index legitimately holds entries at
        older fingerprints between epochs (consistency-checked puts
        land there), and those describe routes priced under costs that
        no longer hold. Lookups here do not touch hit/miss counters or
        LRU recency — analysis must not distort serving behaviour.
        """
        fingerprint = graph.fingerprint
        uid = graph.uid
        seen: Set[Tuple[NodeId, NodeId]] = set()
        out: List[Tuple[NodeId, NodeId, FrozenSet[EdgeKey]]] = []
        with self._lock:
            for u, v in links:
                for key in self._edge_index.get((uid, u, v), ()):
                    if key[0] != fingerprint:
                        continue
                    pair = (key[1], key[2])
                    if pair in seen:
                        continue
                    seen.add(pair)
                    entry = self._entries.get(key)
                    if entry is not None and entry.edges:
                        out.append((pair[0], pair[1], entry.edges))
        return out

    def audit_index(self) -> List[str]:
        """Cross-check entries against both indexes; return violations.

        Select-link correctness rides on the inverted edge index being
        an exact mirror of the live entries, so this audit is wired
        into the regression tests: every entry's provenance edges must
        appear in the edge index (and nowhere else), every index slot
        must point at a live entry that lists the edge, and the uid
        index must partition exactly the live key set. An empty list
        means the mirror is exact.
        """
        problems: List[str] = []
        with self._lock:
            for key, entry in self._entries.items():
                uid = key[0][0]
                if key not in self._by_uid.get(uid, ()):
                    problems.append(f"entry {key!r} missing from uid index")
                for u, v in entry.edges or ():
                    if key not in self._edge_index.get((uid, u, v), ()):
                        problems.append(
                            f"entry {key!r} missing from edge index at "
                            f"({u!r}, {v!r})"
                        )
            for (uid, u, v), keys in self._edge_index.items():
                if not keys:
                    problems.append(f"empty edge-index slot ({uid}, {u!r}, {v!r})")
                for key in keys:
                    entry = self._entries.get(key)
                    if entry is None:
                        problems.append(
                            f"edge index ({uid}, {u!r}, {v!r}) points at "
                            f"dead key {key!r}"
                        )
                    elif entry.edges is None or (u, v) not in entry.edges:
                        problems.append(
                            f"edge index ({uid}, {u!r}, {v!r}) points at "
                            f"{key!r} whose provenance lacks the edge"
                        )
                    elif key[0][0] != uid:
                        problems.append(
                            f"edge index ({uid}, {u!r}, {v!r}) holds "
                            f"foreign-uid key {key!r}"
                        )
            indexed = {k for keys in self._by_uid.values() for k in keys}
            for key in indexed - set(self._entries):
                problems.append(f"uid index holds dead key {key!r}")
        return problems

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        with self._lock:
            lookups = self.hits + self.misses
            return self.hits / lookups if lookups else 0.0

    def snapshot(self) -> Dict[str, float]:
        """Plain-dict counter view, shaped like ``IOStatistics.snapshot()``.

        The whole snapshot is taken under the cache lock so concurrent
        traffic (the replay driver's query threads) can never tear the
        counters against each other.
        """
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "rekeyed": self.rekeyed,
                "indexed_edges": len(self._edge_index),
                "hit_rate": self.hits / lookups if lookups else 0.0,
            }

    def __repr__(self) -> str:
        return (
            f"RouteCache(size={len(self)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
