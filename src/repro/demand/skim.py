"""OD skim matrices: batched one-to-all SSSP over the fastpath tiers.

The paper's experiments answer one OD query at a time; planning
workloads (aequilibrae's skimming examples, Chen & Gotsman's batch
fastest-path computations) ask the *many-to-many* question: the full
cost matrix between an origin set and a destination set. Answering it
with |O| x |D| point queries repeats almost all of the search work —
one Dijkstra from origin *o* already settles every destination. This
module amortises accordingly: :func:`skim` runs **one** one-to-all
SSSP per *distinct* origin (over the fingerprint-cached CSR build, or
the historical dict loops for the audit tier) and slices the requested
destination columns out of each completed tree.

Two guarantees shape the API:

* **Single-epoch pricing.** The whole matrix is computed under the
  same optimistic retry the route service uses: the graph fingerprint
  is read before the first SSSP and re-checked (with the
  epoch-in-progress flag) after the last. A skim that overlapped a
  :class:`~repro.traffic.feed.TrafficFeed` epoch is discarded and
  recomputed, so every cell of a returned :class:`SkimMatrix` is
  priced at the one fingerprint the matrix carries — never a mix.
* **Nothing silently dropped.** Unreachable pairs are reported as
  ``inf`` cells, not omitted; asking for an unknown origin or
  destination raises at the call.

With ``retain_paths=True`` the per-origin shortest-path trees are kept
(predecessor maps over node ids), which is what select-link analysis
and all-or-nothing assignment loading walk. The tree path for any pair
is the exact route the single-pair fastpath returns for it — both
realisations relax edges in the same order — so skim answers are
auditable cell-by-cell against independent point Dijkstras
(tests/test_demand.py and the ``bench-demand`` harness hold the
proofs).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import NodeNotFoundError
from repro.graphs.graph import Graph, NodeId
from repro.kernel import csr as _csr
from repro.kernel import fastpath as _fastpath

_INF = math.inf

#: Fastpath tiers :func:`skim` can run its per-origin SSSPs on.
SKIM_TIERS = ("csr", "dict")


@dataclass
class SkimMatrix:
    """A dense OD cost matrix priced at one graph fingerprint.

    ``costs[i][j]`` is the shortest-path cost from ``origins[i]`` to
    ``destinations[j]`` (``inf`` when unreachable). ``trees`` is
    ``None`` unless the skim retained paths; when present it maps each
    distinct origin to a predecessor map (``node -> predecessor``,
    origin mapped to ``None``) over every node the origin reaches.
    """

    graph_name: str
    fingerprint: Tuple[int, int]
    tier: str
    origins: Tuple[NodeId, ...]
    destinations: Tuple[NodeId, ...]
    costs: List[List[float]]
    trees: Optional[Dict[NodeId, Dict[NodeId, Optional[NodeId]]]] = None
    #: Distinct one-to-all searches executed (duplicate origins share).
    sssp_runs: int = 0
    #: Times the optimistic retry discarded an epoch-straddling pass.
    retries: int = 0
    _oindex: Dict[NodeId, int] = field(default_factory=dict, repr=False)
    _dindex: Dict[NodeId, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self._oindex:
            self._oindex = {o: i for i, o in enumerate(self.origins)}
        if not self._dindex:
            self._dindex = {d: j for j, d in enumerate(self.destinations)}

    @property
    def shape(self) -> Tuple[int, int]:
        return (len(self.origins), len(self.destinations))

    def cost(self, origin: NodeId, destination: NodeId) -> float:
        """The skimmed cost of one OD pair (``inf`` if unreachable)."""
        try:
            i = self._oindex[origin]
        except KeyError:
            raise NodeNotFoundError(origin) from None
        try:
            j = self._dindex[destination]
        except KeyError:
            raise NodeNotFoundError(destination) from None
        return self.costs[i][j]

    def row(self, origin: NodeId) -> Dict[NodeId, float]:
        """One origin's costs as ``{destination: cost}`` (inf included)."""
        i = self._oindex.get(origin)
        if i is None:
            raise NodeNotFoundError(origin)
        return dict(zip(self.destinations, self.costs[i]))

    def path(self, origin: NodeId, destination: NodeId) -> Optional[List[NodeId]]:
        """The retained tree path for one pair, or ``None`` if unreachable.

        Requires ``retain_paths=True`` at skim time; the walk is the
        same route the single-pair fastpath returns for the pair.
        """
        if self.trees is None:
            raise ValueError(
                "this skim retained no path trees; re-run with "
                "retain_paths=True"
            )
        if self.cost(origin, destination) == _INF:
            return None
        if origin == destination:
            return [origin]
        tree = self.trees[origin]
        path = [destination]
        node = destination
        while node != origin:
            node = tree[node]
            path.append(node)
        path.reverse()
        return path

    def routes(self) -> Iterable[Tuple[NodeId, NodeId, Tuple]]:
        """Yield ``(origin, destination, edges)`` for every reachable pair.

        ``edges`` is the tuple of directed edges of the retained tree
        path — the route stream select-link inversion consumes. Pairs
        with ``origin == destination`` traverse no edges and are
        skipped; unreachable pairs are skipped (their cells stay
        ``inf`` in the matrix, nothing is lost).
        """
        if self.trees is None:
            raise ValueError(
                "this skim retained no path trees; re-run with "
                "retain_paths=True"
            )
        for i, origin in enumerate(self.origins):
            row = self.costs[i]
            for j, destination in enumerate(self.destinations):
                if origin == destination or row[j] == _INF:
                    continue
                path = self.path(origin, destination)
                yield origin, destination, tuple(zip(path, path[1:]))

    def unreachable_pairs(self) -> List[Tuple[NodeId, NodeId]]:
        """Every ``inf`` cell as an explicit OD-pair list."""
        out = []
        for i, origin in enumerate(self.origins):
            for j, destination in enumerate(self.destinations):
                if self.costs[i][j] == _INF:
                    out.append((origin, destination))
        return out

    def __repr__(self) -> str:
        rows, cols = self.shape
        return (
            f"SkimMatrix({self.graph_name!r}, {rows}x{cols}, tier={self.tier}, "
            f"fingerprint={self.fingerprint})"
        )


def _skim_rows_csr(
    graph: Graph,
    distinct_origins: Sequence[NodeId],
    destinations: Sequence[NodeId],
    retain_paths: bool,
) -> Tuple[Dict[NodeId, List[float]], Optional[Dict]]:
    rows: Dict[NodeId, List[float]] = {}
    trees: Optional[Dict] = {} if retain_paths else None
    for origin in distinct_origins:
        csr, dist, pred = _csr.sssp_tree(graph, origin)
        index_of = csr.index_of
        rows[origin] = [dist[index_of[d]] for d in destinations]
        if retain_paths:
            node_ids = csr.node_ids
            tree: Dict[NodeId, Optional[NodeId]] = {origin: None}
            for i, p in enumerate(pred):
                if p != -1:
                    tree[node_ids[i]] = node_ids[p]
            trees[origin] = tree
    return rows, trees


def _skim_rows_dict(
    graph: Graph,
    distinct_origins: Sequence[NodeId],
    destinations: Sequence[NodeId],
    retain_paths: bool,
) -> Tuple[Dict[NodeId, List[float]], Optional[Dict]]:
    rows: Dict[NodeId, List[float]] = {}
    trees: Optional[Dict] = {} if retain_paths else None
    for origin in distinct_origins:
        dist, pred = _fastpath.sssp_tree_dict(graph, origin)
        rows[origin] = [dist.get(d, _INF) for d in destinations]
        if retain_paths:
            trees[origin] = pred
    return rows, trees


def skim(
    graph: Graph,
    origins: Iterable[NodeId],
    destinations: Optional[Iterable[NodeId]] = None,
    tier: str = "csr",
    retain_paths: bool = False,
) -> SkimMatrix:
    """Compute the dense OD cost matrix ``origins`` x ``destinations``.

    ``destinations`` defaults to every node of the graph (the classic
    "skim against all zones" shape). ``tier`` picks the SSSP
    realisation: ``"csr"`` (default) shares the fingerprint-keyed
    build cache with the single-pair serving path; ``"dict"`` runs the
    historical dict loops — slower, but structurally independent of
    the CSR flattening, which is what makes it the audit reference.
    Duplicate origins (or destinations) are computed once and share
    their row (column); ``sssp_runs`` on the returned matrix counts
    the distinct searches actually executed.

    The returned matrix is guaranteed single-epoch: every cell is
    priced at ``matrix.fingerprint``. A pass that overlapped a traffic
    epoch is discarded and recomputed (counted in ``retries``).
    """
    if tier not in SKIM_TIERS:
        raise ValueError(
            f"unknown skim tier {tier!r}; expected one of "
            f"{', '.join(SKIM_TIERS)}"
        )
    origin_list: List[NodeId] = list(origins)
    for origin in origin_list:
        if origin not in graph:
            raise NodeNotFoundError(origin)
    if destinations is None:
        destination_list: List[NodeId] = list(graph.node_ids())
    else:
        destination_list = list(destinations)
        for destination in destination_list:
            if destination not in graph:
                raise NodeNotFoundError(destination)
    # Order-preserving dedup: each distinct origin runs one SSSP.
    distinct = list(dict.fromkeys(origin_list))
    compute = _skim_rows_csr if tier == "csr" else _skim_rows_dict

    retries = 0
    while True:
        # Wait out an in-progress epoch so the fingerprint we stamp on
        # the matrix describes a settled cost state.
        while graph.cost_update_in_progress:
            time.sleep(0)
        fingerprint = graph.fingerprint
        rows, trees = compute(graph, distinct, destination_list, retain_paths)
        if not graph.cost_update_in_progress and graph.fingerprint == fingerprint:
            break
        retries += 1

    return SkimMatrix(
        graph_name=graph.name,
        fingerprint=fingerprint,
        tier=tier,
        origins=tuple(origin_list),
        destinations=tuple(destination_list),
        costs=[list(rows[origin]) for origin in origin_list],
        trees=trees,
        sssp_runs=len(distinct),
        retries=retries,
    )
