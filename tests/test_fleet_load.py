"""Load generator determinism, audit integrity, and report guards."""

import json

import pytest

from repro.experiments.fleetload import (
    EXPECTED_LAYOUTS,
    FleetBenchConfig,
    FleetBenchReport,
    run_fleet_bench,
)
from repro.fleet import (
    FleetLoadConfig,
    FleetRouter,
    partition_graph,
    run_fleet_load,
    zipf_pairs,
)
from repro.graphs.grid import make_paper_grid
from repro.traffic.feed import TrafficFeed

pytestmark = pytest.mark.fleet


class TestZipfPairs:
    def test_seeded_stream_is_reproducible(self):
        graph = make_paper_grid(6, "uniform", seed=1)
        assert zipf_pairs(graph, 50, 1.1, 7) == zipf_pairs(graph, 50, 1.1, 7)
        assert zipf_pairs(graph, 50, 1.1, 7) != zipf_pairs(graph, 50, 1.1, 8)

    def test_alpha_skews_endpoint_popularity(self):
        graph = make_paper_grid(8, "uniform", seed=1)
        pairs = zipf_pairs(graph, 400, 1.4, 3)
        counts = {}
        for source, _target in pairs:
            counts[source] = counts.get(source, 0) + 1
        top = max(counts.values())
        # The hottest origin must dominate a uniform draw's share.
        assert top > 3 * (400 / graph.node_count)


class TestRunFleetLoad:
    def test_small_run_is_clean_and_counts_add_up(self):
        graph = make_paper_grid(7, "variance", seed=5)
        partition = partition_graph(graph, 2, 2)
        router = FleetRouter(partition)
        feed = TrafficFeed(graph)
        feed.subscribe(router)
        config = FleetLoadConfig(
            queries=120, rounds=3, concurrency=4, seed=5, epoch_edges=10
        )
        try:
            report = run_fleet_load(graph, router, feed, config)
        finally:
            router.shutdown()
        assert report.clean
        assert report.queries == 120
        assert report.answered + report.shed == 120
        assert report.audited == report.answered
        assert report.inexact == 0 and report.inexact_samples == []
        assert report.epochs_applied == 2
        assert report.cross_shard > 0 and report.stitched > 0
        assert report.throughput_qps > 0
        assert report.p99_latency_ms >= report.p50_latency_ms >= 0
        assert report.snapshot["fleet"]["queries"] == 120

    def test_sheds_flagged_not_dropped(self):
        graph = make_paper_grid(6, "uniform", seed=2)
        partition = partition_graph(graph, 2, 2)
        router = FleetRouter(partition, max_queue=0)
        feed = TrafficFeed(graph)
        feed.subscribe(router)
        config = FleetLoadConfig(queries=40, rounds=1, concurrency=4, seed=2)
        try:
            report = run_fleet_load(graph, router, feed, config)
        finally:
            router.shutdown()
        # Only same-node (trivial) queries answer under zero capacity.
        assert report.answered + report.shed == report.queries
        assert report.shed > 0
        assert report.clean  # shed-with-flag keeps the run accountable

    def test_to_snapshot_leaves_are_numeric(self):
        graph = make_paper_grid(6, "uniform", seed=2)
        partition = partition_graph(graph, 1, 2)
        router = FleetRouter(partition)
        feed = TrafficFeed(graph)
        feed.subscribe(router)
        config = FleetLoadConfig(queries=20, rounds=1, concurrency=2, seed=2)
        try:
            report = run_fleet_load(graph, router, feed, config)
        finally:
            router.shutdown()
        for name, value in report.to_snapshot().items():
            assert isinstance(value, (int, float)) and not isinstance(
                value, bool
            ), name


class TestFleetBenchReport:
    @pytest.fixture(scope="class")
    def bench(self):
        config = FleetBenchConfig(
            grid=7, queries=120, rounds=2, concurrency=4, epoch_edges=8
        )
        return run_fleet_bench(config)

    def test_covers_expected_layouts_and_audits_clean(self, bench):
        assert tuple(bench.runs) == EXPECTED_LAYOUTS
        assert bench.complete and bench.clean

    def test_json_payload_shape(self, bench):
        payload = json.loads(bench.to_json())
        assert set(payload["layouts"]) == set(EXPECTED_LAYOUTS)
        for layout in EXPECTED_LAYOUTS:
            entry = payload["layouts"][layout]
            assert entry["summary"]["inexact"] == 0
            assert entry["fleet"]["queries"] == 120
            assert len(entry["shards"]) == entry["summary"]["shard_count"]

    def test_partial_report_refuses_json(self, bench):
        partial = FleetBenchReport(config=bench.config)
        partial.runs["2x2"] = bench.runs["2x2"]
        assert not partial.complete
        with pytest.raises(ValueError, match="partial"):
            partial.to_json()

    def test_inexact_report_refuses_json(self, bench):
        import copy

        poisoned = FleetBenchReport(config=bench.config)
        poisoned.runs = {k: copy.copy(v) for k, v in bench.runs.items()}
        poisoned.runs["2x2"].inexact = 1
        assert poisoned.complete and not poisoned.clean
        with pytest.raises(ValueError, match="inexact"):
            poisoned.to_json()

    def test_layout_narrowing_stays_incomplete(self):
        config = FleetBenchConfig(
            grid=6, queries=40, rounds=1, concurrency=2, epoch_edges=0
        )
        subset = run_fleet_bench(config, layouts=("2x2",))
        assert not subset.complete
        assert subset.missing == ["3x3"]
