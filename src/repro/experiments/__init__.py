"""Experiment harness regenerating every table and figure of the paper."""

from repro.experiments.runner import (
    ASTAR_VERSION_ALGORITHMS,
    Measurement,
    PAPER_ALGORITHMS,
    measure,
    measure_suite,
    pivot,
)
from repro.experiments.spec import (
    ExperimentResult,
    ExperimentSpec,
    all_experiments,
    get_experiment,
)

# Benchmark harnesses (wallclock, fleetload, fleetchaos, demand) are
# imported lazily by the CLI and benchmarks — not re-exported here.

__all__ = [
    "Measurement",
    "PAPER_ALGORITHMS",
    "ASTAR_VERSION_ALGORITHMS",
    "measure",
    "measure_suite",
    "pivot",
    "ExperimentResult",
    "ExperimentSpec",
    "all_experiments",
    "get_experiment",
]
