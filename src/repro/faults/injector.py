"""The mechanism half of fault injection.

A :class:`FaultInjector` sits at the storage boundary (buffer pool,
heap files, index probes) and turns the :class:`FaultPlan`'s decisions
into effects:

* ``read-error`` / ``write-error`` → raise
  :class:`~repro.exceptions.TransientIOError` *before* the operation
  charges or mutates anything, so a retry starts from clean state;
* ``torn-page`` → corrupt the page in memory, detect it via the
  :meth:`Page.verify` checksum, restore the content (the simulated
  re-read), and let :class:`~repro.exceptions.TornPageError` propagate
  so the caller's retry path is exercised end to end;
* ``latency`` → bill a stall through
  :meth:`IOStatistics.charge_latency` and carry on.

It also owns the *recovery* policy: :meth:`protect` wraps a phase of
work in bounded retry with exponential backoff, each backoff billed as
latency so injected trouble shows up on the paper's execution-time
axis, and raises :class:`~repro.exceptions.RetriesExhaustedError` when
the budget runs out — the signal the serving layer degrades on.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, TypeVar

from repro.exceptions import (
    FaultError,
    RetriesExhaustedError,
    SimulatedCrash,
    TransientIOError,
)
from repro.faults.plan import FaultPlan
from repro.storage.iostats import IOStatistics
from repro.storage.page import Page

T = TypeVar("T")

#: Backoff charged for the first retry, doubling each further retry.
DEFAULT_BACKOFF_UNITS = 0.1


class FaultInjector:
    """Applies a :class:`FaultPlan` at storage sites and retries phases."""

    def __init__(
        self,
        plan: FaultPlan,
        stats: IOStatistics,
        max_retries: int = 3,
        backoff_units: float = DEFAULT_BACKOFF_UNITS,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if backoff_units < 0:
            raise ValueError("backoff_units must be non-negative")
        self.plan = plan
        self.stats = stats
        self.max_retries = max_retries
        self.backoff_units = backoff_units
        self._lock = threading.Lock()
        self.faults_injected = 0
        self.faults_by_kind: Dict[str, int] = {}
        self.retries = 0
        self.retries_by_phase: Dict[str, int] = {}
        self.retries_exhausted = 0

    # ------------------------------------------------------------------
    # storage-site hooks
    # ------------------------------------------------------------------
    def on_page_access(self, file_name: str, page: Page, for_write: bool) -> None:
        """Hook for every :meth:`BufferPool.access` (may raise)."""
        if self.plan.is_noop:
            return
        kind = "write" if for_write else "read"
        fault = self.plan.decide(f"page:{file_name}", kind)
        if fault:
            self._apply(fault, f"page:{file_name}", kind, page=page, file_name=file_name)

    def on_read(self, site: str) -> None:
        """Hook for page-less read sites (index probes)."""
        if self.plan.is_noop:
            return
        fault = self.plan.decide(site, "read")
        if fault:
            self._apply(fault, site, "read")

    def on_write(self, site: str) -> None:
        """Hook for page-less write sites (heap mutations, flushes)."""
        if self.plan.is_noop:
            return
        fault = self.plan.decide(site, "write")
        if fault:
            self._apply(fault, site, "write")

    def on_commit(self, site: str) -> None:
        """Hook for WAL commit points (log appends, checkpoints).

        Crash-only: commit sites never draw transient faults, because
        a retried append would journal the same operation twice. The
        site still consumes one op index, so the kill-at-op-N sweep
        can land a crash squarely in the window between an in-memory
        apply and its commit record.
        """
        if self.plan.is_noop:
            return
        if self.plan.check_crash(site):
            self._count_fault("crash")
            raise SimulatedCrash(site, self.plan.op_index - 1)

    def _apply(
        self,
        fault: str,
        site: str,
        kind: str,
        page: Optional[Page] = None,
        file_name: str = "?",
    ) -> None:
        self._count_fault(fault)
        if fault == "crash":
            # Not a FaultError: propagates through every retry wrapper
            # and degradation ladder — the process is dead.
            raise SimulatedCrash(site, self.plan.op_index - 1)
        if fault == "latency":
            self.stats.charge_latency(self.plan.latency_units)
            return
        if fault == "torn-page" and page is not None:
            # Seal the good content, tear the block, detect the tear
            # through the checksum, then restore (the simulated
            # successful re-read) so the caller's retry can succeed.
            sealed = page.checksum()
            saved = list(page.slots)
            page.slots.append(("__torn__",))
            try:
                page.verify(sealed, file_name)
            finally:
                page.slots[:] = saved
            return  # unreachable: verify always raises here
        # read-error / write-error, and torn-page at page-less sites,
        # surface as transient I/O errors.
        raise TransientIOError(site, operation=kind)

    def _count_fault(self, fault: str) -> None:
        with self._lock:
            self.faults_injected += 1
            self.faults_by_kind[fault] = self.faults_by_kind.get(fault, 0) + 1

    # ------------------------------------------------------------------
    # recovery policy
    # ------------------------------------------------------------------
    def protect(self, phase: str, fn: Callable[[], T]) -> T:
        """Run ``fn`` with bounded retry and exponential backoff.

        Only :class:`FaultError` is retried — real bugs propagate
        unchanged on the first throw. Each retry bills
        ``backoff_units * 2**(retry-1)`` of latency attributed to
        ``phase``. ``fn`` must be idempotent: injection happens before
        state changes at every storage site, and the engine's protected
        phases (epoch sync, adjacency joins) are read-only or
        skip-if-already-applied.
        """
        attempt = 0
        while True:
            try:
                return fn()
            except RetriesExhaustedError:
                raise  # never re-wrap an inner exhaustion
            except FaultError as fault:
                attempt += 1
                if attempt > self.max_retries:
                    with self._lock:
                        self.retries_exhausted += 1
                    raise RetriesExhaustedError(phase, attempt, fault) from fault
                with self._lock:
                    self.retries += 1
                    self.retries_by_phase[phase] = (
                        self.retries_by_phase.get(phase, 0) + 1
                    )
                with self.stats.phase(phase):
                    self.stats.charge_latency(
                        self.backoff_units * (2 ** (attempt - 1))
                    )

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Counter view for service snapshots and determinism tests."""
        with self._lock:
            return {
                "faults_injected": self.faults_injected,
                "faults_by_kind": dict(self.faults_by_kind),
                "retries": self.retries,
                "retries_by_phase": dict(self.retries_by_phase),
                "retries_exhausted": self.retries_exhausted,
                "schedule_length": len(self.plan.schedule),
                "schedule_digest": self.plan.schedule_digest(),
            }

    def __repr__(self) -> str:
        return (
            f"FaultInjector(seed={self.plan.seed}, "
            f"faults={self.faults_injected}, retries={self.retries}, "
            f"exhausted={self.retries_exhausted})"
        )
