"""Fused in-memory specialisations of the kernel loop.

The generic loop in :mod:`repro.kernel.loop` pays a handful of method
calls per iteration — free next to a single Table 4A page read, but a
measurable tax on the zero-I/O tier where one Dijkstra iteration is
~1.5 µs of dict and heap work. The fused loops inline the kernel's
frontier policies to flat control flow: ``uniform_cost`` is the heap
policy with no lookahead (Dijkstra, Figure 2), ``best_first`` is the
heap policy with an estimator (A*, Figure 3), and ``wave`` is the
wave-synchronous policy (Iterative, Figure 1). ``kernel.search``
dispatches untraced in-memory runs here; traced runs and everything
relational go through the generic loop.

The fused tier itself has two realisations:

* the **CSR tier** (:mod:`repro.kernel.csr`) — the default. The graph
  is flattened once per :attr:`Graph.fingerprint` into contiguous
  ``indptr``/``indices``/``weights`` arrays and the loops run on
  preallocated flat distance/predecessor/status arrays with an
  index-based heap. ``uniform_cost`` / ``best_first`` / ``wave`` /
  ``sssp`` here are that tier's entry points.
* the **dict tier** (``uniform_cost_dict`` / ``best_first_dict`` /
  ``wave_dict`` / ``sssp_dict``) — the historical fused loops over
  dict-of-dict adjacency, kept as the wall-clock baseline the
  ``bench-wallclock`` harness compares against and as an executable
  reference the equivalence suite holds the CSR tier to.

tests/test_kernel.py asserts that every fused loop and its generic
counterpart produce identical paths, costs, and
:class:`~repro.kernel.result.SearchStats` — the fusion is an
optimisation, never a semantic fork. Iteration limits are enforced
*before* the bounding expansion on every tier: a bounded run performs
at most ``limit`` expansions (waves), never ``limit + 1``.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Optional

from repro.exceptions import NodeNotFoundError
from repro.graphs.graph import Graph, NodeId
from repro.kernel import csr as _csr
from repro.kernel.result import RunResult, SearchStats, reconstruct_path

#: The default fused tier: CSR flat-array loops (see module docstring).
uniform_cost = _csr.uniform_cost
best_first = _csr.best_first
wave = _csr.wave
sssp = _csr.sssp
bidirectional = _csr.bidirectional


class _BidirectionalFrontier:
    """One direction of the dict-tier bidirectional search."""

    def __init__(self, start: NodeId) -> None:
        self.cost: Dict[NodeId, float] = {start: 0.0}
        self.predecessor: Dict[NodeId, NodeId] = {}
        self.settled = set()
        self.heap = [(0.0, 0, start)]
        self._counter = 1

    def min_key(self) -> float:
        """Smallest tentative cost still on the heap (inf if drained)."""
        while self.heap:
            d, _, u = self.heap[0]
            if u in self.settled or d > self.cost.get(u, math.inf):
                heapq.heappop(self.heap)
                continue
            return d
        return math.inf

    def expand(self, graph: Graph, stats: SearchStats) -> Optional[NodeId]:
        """Settle and expand one node; return it (None if drained)."""
        while self.heap:
            d, _, u = heapq.heappop(self.heap)
            if u in self.settled or d > self.cost.get(u, math.inf):
                continue
            self.settled.add(u)
            stats.iterations += 1
            stats.nodes_expanded += 1
            for v, edge_cost in graph.neighbors(u):
                stats.edges_relaxed += 1
                if v in self.settled:
                    continue
                candidate = d + edge_cost
                if candidate < self.cost.get(v, math.inf):
                    if v not in self.cost:
                        stats.frontier_inserts += 1
                    self.cost[v] = candidate
                    self.predecessor[v] = u
                    stats.nodes_updated += 1
                    heapq.heappush(self.heap, (candidate, self._counter, v))
                    self._counter += 1
            return u
        return None


def bidirectional_dict(
    graph: Graph, source: NodeId, destination: NodeId
) -> RunResult:
    """Bidirectional Dijkstra over dict adjacency (the baseline tier).

    Runs Dijkstra simultaneously from the source (forwards) and from
    the destination (backwards over a reversed copy), alternating
    expansions by smaller frontier key, and stops once the frontiers'
    combined minimum keys reach the best meeting-point cost seen —
    which certifies optimality for non-negative edge costs. This is
    the implementation that historically lived in
    ``repro.core.bidirectional`` (PR 3 left it outside the kernel);
    the CSR realisation in :func:`repro.kernel.csr.bidirectional`
    replays the same termination rule on flat arrays.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    if destination not in graph:
        raise NodeNotFoundError(destination)

    stats = SearchStats()
    result = RunResult(
        source=source,
        destination=destination,
        algorithm="bidirectional",
        stats=stats,
    )
    if source == destination:
        result.path = [source]
        result.cost = 0.0
        result.found = True
        return result

    reversed_graph = graph.reversed()
    forward = _BidirectionalFrontier(source)
    backward = _BidirectionalFrontier(destination)

    best_cost = math.inf
    meeting: Optional[NodeId] = None

    def consider_meeting(node: NodeId) -> None:
        nonlocal best_cost, meeting
        f = forward.cost.get(node, math.inf)
        b = backward.cost.get(node, math.inf)
        if f + b < best_cost:
            best_cost = f + b
            meeting = node

    while True:
        fmin, bmin = forward.min_key(), backward.min_key()
        if fmin + bmin >= best_cost or (fmin == math.inf and bmin == math.inf):
            break
        if fmin <= bmin:
            settled = forward.expand(graph, stats)
        else:
            settled = backward.expand(reversed_graph, stats)
        if settled is None:
            break
        consider_meeting(settled)
        # A meeting can also occur at a labelled-but-unsettled neighbor.
        for v, _cost in graph.neighbors(settled):
            consider_meeting(v)

    if meeting is None or not math.isfinite(best_cost):
        return result

    forward_half = reconstruct_path(forward.predecessor, source, meeting)
    backward_half = reconstruct_path(backward.predecessor, destination, meeting)
    assert forward_half is not None and backward_half is not None
    backward_half.reverse()  # meeting ... destination
    result.path = forward_half + backward_half[1:]
    result.cost = best_cost
    result.found = True
    return result


def uniform_cost_dict(
    graph: Graph, source: NodeId, destination: NodeId
) -> RunResult:
    """Heap frontier, no lookahead: Dijkstra over dict adjacency.

    Duplicate *avoidance* (the paper's preferred frontier policy) via
    the lazy-deletion binary-heap idiom: stale entries are skipped on
    pop, which leaves the expansion sequence identical to true
    decrease-key. Requires non-negative edge costs (enforced at graph
    construction). Terminates the moment the destination is selected
    (Lemma 2); that final selection is not counted as an iteration,
    matching the paper's counts.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    if destination not in graph:
        raise NodeNotFoundError(destination)

    stats = SearchStats()
    cost: Dict[NodeId, float] = {source: 0.0}
    predecessor: Dict[NodeId, NodeId] = {}
    explored = set()
    counter = 0
    heap = [(0.0, counter, source)]
    frontier_size = 1
    stats.frontier_inserts += 1
    found = False

    while heap:
        g, _, u = heapq.heappop(heap)
        if u in explored or g > cost.get(u, math.inf):
            continue  # stale lazy-deletion entry
        frontier_size -= 1
        explored.add(u)
        if u == destination:
            found = True
            break
        stats.iterations += 1
        stats.nodes_expanded += 1
        stats.observe_frontier(frontier_size)
        for v, edge_cost in graph.neighbors(u):
            stats.edges_relaxed += 1
            if v in explored:
                continue
            candidate = g + edge_cost
            if candidate < cost.get(v, math.inf):
                newly_open = v not in cost
                cost[v] = candidate
                predecessor[v] = u
                stats.nodes_updated += 1
                counter += 1
                heapq.heappush(heap, (candidate, counter, v))
                if newly_open:
                    frontier_size += 1
                    stats.frontier_inserts += 1

    result = RunResult(
        source=source,
        destination=destination,
        algorithm="dijkstra",
        stats=stats,
    )
    if found:
        path = reconstruct_path(predecessor, source, destination)
        assert path is not None, "destination settled without a path label"
        result.path = path
        result.cost = cost[destination]
        result.found = True
    return result


def best_first_dict(
    graph: Graph,
    source: NodeId,
    destination: NodeId,
    estimator,
    max_iterations: Optional[int] = None,
) -> RunResult:
    """Heap frontier with lookahead: A* over dict adjacency.

    Two fidelity details from Figure 3's pseudo-code are preserved:
    the duplicate test is against the frontier only, so an explored
    node whose label improves is re-inserted (*reopened*); and ties on
    ``g + h`` break towards the smaller ``h``, then FIFO. The
    iteration bound is enforced before the bounding expansion.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    if destination not in graph:
        raise NodeNotFoundError(destination)

    estimator.prepare(graph, destination)

    stats = SearchStats()
    cost: Dict[NodeId, float] = {source: 0.0}
    predecessor: Dict[NodeId, NodeId] = {}
    explored = set()
    in_frontier = {source}
    counter = 0
    h_source = estimator.estimate(graph, source, destination)
    heap = [(h_source, h_source, counter, source, 0.0)]
    stats.frontier_inserts += 1
    limit = (
        max_iterations
        if max_iterations is not None
        else max(1000, len(graph) * len(graph))
    )
    found = False

    while heap:
        _f, _h, _, u, g_at_push = heapq.heappop(heap)
        if u not in in_frontier or g_at_push > cost.get(u, math.inf):
            continue  # stale lazy-deletion entry
        in_frontier.discard(u)
        if u == destination:
            found = True
            break
        if stats.iterations >= limit:
            raise RuntimeError(
                f"A* exceeded {limit} iterations; the estimator may be "
                "wildly inconsistent"
            )
        if u in explored:
            stats.nodes_reopened += 1
        explored.add(u)
        stats.iterations += 1
        stats.nodes_expanded += 1
        stats.observe_frontier(len(in_frontier))
        g = cost[u]
        for v, edge_cost in graph.neighbors(u):
            stats.edges_relaxed += 1
            candidate = g + edge_cost
            if candidate < cost.get(v, math.inf):
                cost[v] = candidate
                predecessor[v] = u
                stats.nodes_updated += 1
                # Figure 3: re-insert only if not already in the frontier;
                # explored nodes re-enter (reopening).
                h_v = estimator.estimate(graph, v, destination)
                counter += 1
                heapq.heappush(heap, (candidate + h_v, h_v, counter, v, candidate))
                if v not in in_frontier:
                    in_frontier.add(v)
                    stats.frontier_inserts += 1

    result = RunResult(
        source=source,
        destination=destination,
        algorithm="astar",
        estimator=estimator.name,
        stats=stats,
    )
    if found:
        path = reconstruct_path(predecessor, source, destination)
        assert path is not None, "destination selected without a path label"
        result.path = path
        result.cost = cost[destination]
        result.found = True
    return result


def wave_dict(
    graph: Graph,
    source: NodeId,
    destination: NodeId,
    max_iterations: Optional[int] = None,
) -> RunResult:
    """Wave-synchronous label correcting over dict adjacency.

    One iteration is one wave (one trip of the outer loop), matching
    how the paper counts iterations for this algorithm; the search only
    terminates when a wave produces no improvements. The wave bound is
    enforced before a wave begins.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    if destination not in graph:
        raise NodeNotFoundError(destination)

    stats = SearchStats()
    cost: Dict[NodeId, float] = {source: 0.0}
    predecessor: Dict[NodeId, NodeId] = {}
    frontier = [source]
    limit = max_iterations if max_iterations is not None else 4 * len(graph) + 4
    ever_expanded = set()

    while frontier:
        if stats.iterations >= limit:
            raise RuntimeError(
                f"iterative search exceeded {limit} waves; "
                "graph may have pathological costs"
            )
        stats.iterations += 1
        stats.observe_frontier(len(frontier))
        next_wave = []
        next_in_frontier = set()
        for u in frontier:
            stats.nodes_expanded += 1
            if u in ever_expanded:
                stats.nodes_reopened += 1
            ever_expanded.add(u)
            base = cost[u]
            for v, edge_cost in graph.neighbors(u):
                stats.edges_relaxed += 1
                candidate = base + edge_cost
                if candidate < cost.get(v, math.inf):
                    cost[v] = candidate
                    predecessor[v] = u
                    stats.nodes_updated += 1
                    if v not in next_in_frontier:
                        next_wave.append(v)
                        next_in_frontier.add(v)
                        stats.frontier_inserts += 1
        frontier = next_wave

    result = RunResult(
        source=source,
        destination=destination,
        algorithm="iterative",
        stats=stats,
    )
    path = reconstruct_path(predecessor, source, destination)
    if path is not None and destination in cost:
        result.path = path
        result.cost = cost[destination]
        result.found = True
    return result


def sssp_dict(
    graph: Graph, source: NodeId, cutoff: Optional[float] = None
) -> Dict[NodeId, float]:
    """Single-source shortest-path distances over dict adjacency.

    The partial-transitive-closure primitive every single-pair
    configuration specialises; the CSR realisation (:func:`sssp`) is
    the production path shared by tests, the landmark estimator's table
    builds, and the graph analysis helpers. ``cutoff`` optionally
    bounds the explored radius.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    dist: Dict[NodeId, float] = {source: 0.0}
    heap = [(0.0, 0, source)]
    counter = 1
    settled = set()
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        if cutoff is not None and d > cutoff:
            continue
        for v, edge_cost in graph.neighbors(u):
            nd = d + edge_cost
            if nd < dist.get(v, math.inf):
                dist[v] = nd
                counter += 1
                heapq.heappush(heap, (nd, counter, v))
    if cutoff is not None:
        return {node: d for node, d in dist.items() if d <= cutoff}
    return dist


def sssp_tree_dict(
    graph: Graph, source: NodeId
) -> "tuple[Dict[NodeId, float], Dict[NodeId, Optional[NodeId]]]":
    """One-to-all Dijkstra with predecessors over dict adjacency.

    Returns ``(dist, pred)``: only reached nodes appear in ``dist``,
    and ``pred`` maps each reached node to its predecessor on the
    shortest path from ``source`` (``None`` for the source itself).
    Relaxations run in the same order as :func:`sssp_dict`, so the
    distances are identical to it and the tree path to any node is the
    route ``uniform_cost_dict`` returns for the pair. This is the
    independent reference the demand subsystem's exactness harness
    audits the CSR skim tier against.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    dist: Dict[NodeId, float] = {source: 0.0}
    pred: Dict[NodeId, Optional[NodeId]] = {source: None}
    heap = [(0.0, 0, source)]
    counter = 1
    settled = set()
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        for v, edge_cost in graph.neighbors(u):
            nd = d + edge_cost
            if nd < dist.get(v, math.inf):
                dist[v] = nd
                pred[v] = u
                counter += 1
                heapq.heappush(heap, (nd, counter, v))
    return dist, pred
