"""Unit tests for the fault-injection subsystem (plan + injector)."""

import pytest

from repro.exceptions import (
    FaultError,
    RetriesExhaustedError,
    TornPageError,
    TransientIOError,
)
from repro.faults import DEFAULT_BACKOFF_UNITS, FaultInjector, FaultPlan
from repro.storage.iostats import IOStatistics
from repro.storage.page import Page

pytestmark = pytest.mark.chaos


# ----------------------------------------------------------------------
# FaultPlan: the policy
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(read_error_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(write_error_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(latency_units=-1.0)

    def test_is_noop_only_when_all_rates_zero(self):
        assert FaultPlan().is_noop
        assert not FaultPlan(read_error_rate=0.1).is_noop
        assert not FaultPlan(latency_rate=0.1).is_noop
        plan = FaultPlan()
        plan.torn_page_rate = 0.5  # rates are deliberately mutable
        assert not plan.is_noop

    def test_same_seed_same_schedule(self):
        def drive(plan):
            for index in range(200):
                plan.decide(f"site{index % 3}", "read" if index % 2 else "write")
            return list(plan.schedule)

        first = drive(FaultPlan(seed=42, read_error_rate=0.2,
                                write_error_rate=0.2, torn_page_rate=0.1,
                                latency_rate=0.1))
        second = drive(FaultPlan(seed=42, read_error_rate=0.2,
                                 write_error_rate=0.2, torn_page_rate=0.1,
                                 latency_rate=0.1))
        assert first == second
        assert first  # the rates are high enough that something fired

    def test_different_seeds_diverge(self):
        kwargs = dict(read_error_rate=0.3, latency_rate=0.3)

        def drive(seed):
            plan = FaultPlan(seed=seed, **kwargs)
            for _ in range(100):
                plan.decide("s", "read")
            return list(plan.schedule)

        assert drive(1) != drive(2)

    def test_reset_replays_identically(self):
        plan = FaultPlan(seed=7, read_error_rate=0.25, latency_rate=0.25)
        for _ in range(80):
            plan.decide("s", "read")
        first = list(plan.schedule)
        digest = plan.schedule_digest()
        plan.reset()
        assert plan.op_index == 0 and plan.schedule == []
        for _ in range(80):
            plan.decide("s", "read")
        assert plan.schedule == first
        assert plan.schedule_digest() == digest

    def test_torn_pages_only_on_reads(self):
        plan = FaultPlan(seed=3, torn_page_rate=1.0)
        assert plan.decide("s", "read") == "torn-page"
        assert plan.decide("s", "write") == ""  # torn rate ignores writes

    def test_schedule_records_index_site_kind(self):
        plan = FaultPlan(seed=0, read_error_rate=1.0)
        plan.decide("alpha", "read")
        plan.decide("beta", "read")
        assert plan.schedule == [(0, "alpha", "read-error"),
                                 (1, "beta", "read-error")]


# ----------------------------------------------------------------------
# FaultInjector: the mechanism
# ----------------------------------------------------------------------
def make_injector(max_retries=3, **rates):
    stats = IOStatistics()
    plan = FaultPlan(seed=0, **rates)
    return FaultInjector(plan, stats, max_retries=max_retries), stats, plan


class TestFaultInjector:
    def test_noop_plan_touches_nothing(self):
        injector, stats, plan = make_injector()
        page = Page(0, 4)
        injector.on_page_access("f", page, for_write=True)
        injector.on_read("isam:t")
        injector.on_write("heap:t")
        assert plan.op_index == 0  # is_noop short-circuits before the RNG
        assert injector.faults_injected == 0
        assert stats.cost == 0.0

    def test_read_error_raises_before_any_charge(self):
        injector, stats, _plan = make_injector(read_error_rate=1.0)
        with pytest.raises(TransientIOError) as excinfo:
            injector.on_read("isam:t")
        assert excinfo.value.site == "isam:t"
        assert stats.cost == 0.0
        assert injector.faults_by_kind == {"read-error": 1}

    def test_latency_fault_charges_and_continues(self):
        injector, stats, plan = make_injector(latency_rate=1.0)
        injector.on_read("hash:t")  # no raise
        assert stats.latency_units == pytest.approx(plan.latency_units)
        assert stats.latency_events == 1
        assert injector.faults_by_kind == {"latency": 1}

    def test_torn_page_detected_and_restored(self):
        injector, _stats, _plan = make_injector(torn_page_rate=1.0)
        page = Page(0, 4)
        page.slots.append(("row",))
        before = list(page.slots)
        with pytest.raises(TornPageError) as excinfo:
            injector.on_page_access("f", page, for_write=False)
        assert excinfo.value.file_name == "f"
        # The corruption was detected via the checksum, then restored
        # (the simulated successful re-read).
        assert page.slots == before

    def test_protect_retries_and_bills_exponential_backoff(self):
        injector, stats, _plan = make_injector()
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] <= 2:
                raise TransientIOError("s")
            return "ok"

        assert injector.protect("iterate", flaky) == "ok"
        assert attempts["n"] == 3
        assert injector.retries == 2
        assert injector.retries_by_phase == {"iterate": 2}
        # Backoff doubles: 0.1 + 0.2 units, attributed to the phase.
        expected = DEFAULT_BACKOFF_UNITS * (1 + 2)
        assert stats.latency_units == pytest.approx(expected)
        assert stats.phase_cost("iterate") == pytest.approx(expected)

    def test_protect_exhausts_into_retries_exhausted_error(self):
        injector, _stats, _plan = make_injector(max_retries=2)

        def always_fails():
            raise TransientIOError("s")

        with pytest.raises(RetriesExhaustedError) as excinfo:
            injector.protect("traffic-sync", always_fails)
        assert excinfo.value.phase == "traffic-sync"
        assert excinfo.value.attempts == 3  # initial try + 2 retries
        assert injector.retries == 2
        assert injector.retries_exhausted == 1
        assert isinstance(excinfo.value.__cause__, TransientIOError)

    def test_protect_never_rewraps_inner_exhaustion(self):
        injector, _stats, _plan = make_injector()

        def inner_exhausted():
            raise RetriesExhaustedError("inner", 4)

        with pytest.raises(RetriesExhaustedError) as excinfo:
            injector.protect("outer", inner_exhausted)
        assert excinfo.value.phase == "inner"
        assert injector.retries == 0

    def test_protect_lets_real_bugs_through(self):
        injector, _stats, _plan = make_injector()

        def buggy():
            raise ZeroDivisionError

        with pytest.raises(ZeroDivisionError):
            injector.protect("iterate", buggy)
        assert injector.retries == 0

    def test_snapshot_counters(self):
        injector, _stats, plan = make_injector(read_error_rate=1.0)
        with pytest.raises(FaultError):
            injector.on_read("s")
        snap = injector.snapshot()
        assert snap["faults_injected"] == 1
        assert snap["faults_by_kind"] == {"read-error": 1}
        assert snap["schedule_length"] == 1
        assert snap["schedule_digest"] == plan.schedule_digest()

    def test_invalid_construction_rejected(self):
        stats = IOStatistics()
        with pytest.raises(ValueError):
            FaultInjector(FaultPlan(), stats, max_retries=-1)
        with pytest.raises(ValueError):
            FaultInjector(FaultPlan(), stats, backoff_units=-0.5)


# ----------------------------------------------------------------------
# RunResult carries the degradation/retry fields
# ----------------------------------------------------------------------
class TestRunResultFaultFields:
    def test_defaults_are_fault_free(self):
        from repro.kernel.result import RunResult

        result = RunResult(source=0, destination=1, algorithm="dijkstra")
        assert result.degraded is False
        assert result.degraded_reason == ""
        assert result.retries_by_phase == {}
        assert result.fault_retries == 0

    def test_fault_retries_sums_phases(self):
        from repro.kernel.result import RunResult

        result = RunResult(source=0, destination=1, algorithm="dijkstra",
                           retries_by_phase={"traffic-sync": 2, "iterate": 1})
        assert result.fault_retries == 3
