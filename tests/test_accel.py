"""Accelerator-pipeline kernel tests (preprocess → customize → query).

The equivalence suite is the pipeline's contract: every accelerator
configuration — the four one-stage planners and the CCH-lite overlay —
must return cost-exact answers (with a consistent path) against the
seed dict-tier Dijkstra, on grids and random sparse directed graphs,
*across traffic epochs*. The epoch tests assert the stronger property
the ISSUE names: customize-then-query equals rebuild-then-query, down
to the overlay arrays. Hypothesis drives the customize-idempotence
property; the guard tests pin the unknown-name error messages.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import kernel
from repro.exceptions import UnknownAlgorithmError
from repro.graphs.graph import Graph
from repro.graphs.grid import make_grid, make_paper_grid
from repro.graphs.random_graphs import random_sparse_directed
from repro.kernel import accel
from repro.traffic.feed import TrafficFeed

pytestmark = pytest.mark.accel


def _exact(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)


def _pairs(graph, stride=3):
    nodes = sorted(node.node_id for node in graph.nodes())
    return [
        (source, destination)
        for source in nodes[::stride]
        for destination in nodes[::stride]
    ]


def _assert_matches_dijkstra(instance, graph, pairs):
    from repro.kernel import fastpath

    for source, destination in pairs:
        run = instance.query(graph, source, destination)
        ref = fastpath.uniform_cost_dict(graph, source, destination)
        assert run.found == ref.found, (source, destination)
        if not ref.found:
            continue
        assert _exact(run.cost, ref.cost), (source, destination)
        assert run.path[0] == source and run.path[-1] == destination
        assert _exact(graph.path_cost(run.path), run.cost)


class TestEquivalenceAcrossEpochs:
    """Every configuration, cost/path-exact vs Dijkstra, epoch after epoch."""

    @pytest.mark.parametrize("name", accel.ACCELERATORS)
    def test_grid_across_epochs(self, name):
        graph = make_paper_grid(7, seed=21)
        instance = accel.make_accelerator(name)
        pairs = _pairs(graph, stride=4)
        feed = TrafficFeed(graph)
        feed.subscribe(instance)
        _assert_matches_dijkstra(instance, graph, pairs)
        edges = sorted((e.source, e.target) for e in graph.edges())
        for number in range(1, 4):
            updates = [
                (u, v, graph.edge_cost(u, v) * (0.6 + 0.25 * ((number + i) % 4)))
                for i, (u, v) in enumerate(edges[:: 5 + number])
            ]
            feed.apply(updates)
            _assert_matches_dijkstra(instance, graph, pairs)
        assert instance.preprocesses == 1
        assert instance.customizes >= 3

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_cch_random_sparse(self, seed):
        graph = random_sparse_directed(30, 60, seed=seed)
        instance = accel.make_accelerator("cch")
        pairs = _pairs(graph, stride=4)
        _assert_matches_dijkstra(instance, graph, pairs)

    def test_cch_unreachable_pairs(self):
        graph = Graph(name="islands")
        for index in range(6):
            graph.add_node(index, float(index), 0.0)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 1.0)
        graph.add_edge(3, 4, 1.0)
        instance = accel.make_accelerator("cch")
        run = instance.query(graph, 0, 4)
        assert not run.found
        # Scratch state must reset cleanly after a miss.
        hit = instance.query(graph, 0, 2)
        assert hit.found and _exact(hit.cost, 2.0)

    def test_customize_then_query_equals_rebuild_then_query(self):
        """The epoch path and a cold rebuild land on identical overlays."""
        graph = make_paper_grid(8, seed=5)
        live = accel.make_accelerator("cch")
        feed = TrafficFeed(graph)
        feed.subscribe(live)
        live.query(graph, (0, 0), (7, 7))
        edges = sorted((e.source, e.target) for e in graph.edges())
        for number in range(1, 4):
            # Incident-sized batches: few enough deltas to stay under
            # the density cutoff, so the incremental path is exercised.
            updates = [
                (u, v, graph.edge_cost(u, v) * (1.0 + 0.1 * number))
                for u, v in edges[::40]
            ]
            feed.apply(updates)
        assert live.incremental_customizes >= 3
        fresh = accel.make_accelerator("cch")
        fresh.preprocess(graph)
        fresh.customize(graph)
        assert live._fw == fresh._fw
        assert live._bw == fresh._bw
        assert live._mid_fw == fresh._mid_fw
        assert live._mid_bw == fresh._mid_bw
        for pair in _pairs(graph, stride=3):
            a = live.query(graph, *pair)
            b = fresh.query(graph, *pair)
            assert a.found == b.found
            if a.found:
                assert _exact(a.cost, b.cost)


class TestResultBilling:
    def test_first_query_bills_pipeline_phases(self):
        graph = make_grid(5)
        instance = accel.make_accelerator("cch")
        first = instance.query(graph, (0, 0), (4, 4))
        assert first.preprocess_cost > 0
        assert first.customize_cost > 0
        second = instance.query(graph, (0, 0), (4, 4))
        assert second.preprocess_cost == 0
        assert second.customize_cost == 0

    def test_epoch_query_bills_customize_only(self):
        graph = make_grid(5)
        instance = accel.make_accelerator("cch")
        instance.query(graph, (0, 0), (4, 4))
        graph.update_edge_cost((0, 0), (0, 1), 9.0)
        after = instance.query(graph, (0, 0), (4, 4))
        assert after.preprocess_cost == 0
        assert after.customize_cost > 0

    def test_cch_result_identity(self):
        graph = make_grid(4)
        run = kernel.search(graph, (0, 0), (3, 3), tier="cch")
        assert run.algorithm == "dijkstra"
        assert run.variant == "cch"


@st.composite
def graphs_with_updates(draw):
    node_count = draw(st.integers(min_value=2, max_value=10))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    extra = draw(st.integers(min_value=0, max_value=2 * node_count))
    graph = random_sparse_directed(node_count, extra, seed=seed)
    edges = sorted((e.source, e.target) for e in graph.edges())
    picks = draw(
        st.lists(
            st.sampled_from(edges),
            min_size=1,
            max_size=min(6, len(edges)),
            unique=True,
        )
    )
    factors = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
            min_size=len(picks),
            max_size=len(picks),
        )
    )
    return graph, list(zip(picks, factors))


class TestCustomizeIdempotence:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(case=graphs_with_updates())
    def test_customize_is_idempotent_and_matches_full(self, case):
        """Re-customizing on unchanged costs is a no-op fixpoint, and
        the epoch path lands on a cold full pass's arrays."""
        graph, updates = case
        live = accel.make_accelerator("cch")
        feed = TrafficFeed(graph)
        feed.subscribe(live)
        live.preprocess(graph)
        live.customize(graph)
        feed.apply(
            [(u, v, graph.edge_cost(u, v) * factor) for (u, v), factor in updates]
        )
        fw_after, bw_after = list(live._fw), list(live._bw)
        # Idempotence: customizing again against the same costs must
        # not move the overlay.
        live.customize(graph)
        assert live._fw == fw_after
        assert live._bw == bw_after
        # And the overlay equals a cold full customization.
        fresh = accel.make_accelerator("cch")
        fresh.preprocess(graph)
        fresh.customize(graph)
        assert live._fw == fresh._fw
        assert live._bw == fresh._bw


class TestGuards:
    def test_make_accelerator_unknown_name_lists_options(self):
        with pytest.raises(ValueError) as excinfo:
            accel.make_accelerator("warp-drive")
        message = str(excinfo.value)
        for name in accel.ACCELERATORS:
            assert name in message

    def test_search_unknown_tier_lists_tiers(self):
        graph = make_grid(3)
        with pytest.raises(ValueError) as excinfo:
            kernel.search(graph, (0, 0), (2, 2), tier="gpu")
        message = str(excinfo.value)
        for tier in kernel.FASTPATH_TIERS:
            assert tier in message

    def test_search_unknown_algorithm_lists_bidirectional(self):
        graph = make_grid(3)
        with pytest.raises(UnknownAlgorithmError) as excinfo:
            kernel.search(graph, (0, 0), (2, 2), algorithm="teleport")
        assert "bidirectional" in str(excinfo.value)

    def test_cch_tier_rejects_non_dijkstra(self):
        graph = make_grid(3)
        with pytest.raises(ValueError, match="cch"):
            kernel.search(graph, (0, 0), (2, 2), algorithm="astar", tier="cch")

    def test_cch_tier_rejects_trace(self):
        graph = make_grid(3)
        with pytest.raises(ValueError, match="trace"):
            kernel.search(graph, (0, 0), (2, 2), tier="cch", trace=True)

    def test_bidirectional_rejects_trace(self):
        graph = make_grid(3)
        with pytest.raises(ValueError, match="trace"):
            kernel.search(
                graph, (0, 0), (2, 2), algorithm="bidirectional", trace=True
            )


class TestAcceleratorCache:
    def test_keyed_by_graph_and_name(self):
        accel.clear_accelerator_cache()
        accel.reset_accelerator_stats()
        graph = make_grid(4)
        other = make_grid(4)
        first = accel.accelerator_for(graph, "cch")
        assert accel.accelerator_for(graph, "cch") is first
        assert accel.accelerator_for(other, "cch") is not first
        assert accel.accelerator_for(graph, "dijkstra") is not first
        stats = accel.accelerator_cache_stats()
        assert stats["builds"] == 3
        assert stats["hits"] == 1

    def test_search_cch_tier_serves_exact(self):
        graph = make_paper_grid(5, seed=2)
        for pair in _pairs(graph, stride=3):
            run = kernel.search(graph, *pair, tier="cch")
            ref = kernel.search(graph, *pair, tier="dict")
            assert run.found == ref.found
            if ref.found:
                assert _exact(run.cost, ref.cost)
