"""ARIES-lite redo recovery.

Recovery always starts from a *fresh* database object (the crash threw
the old one away): load the checkpoint snapshot if one exists, then
redo the committed log suffix in append order. Because the starting
point is always empty and the log is replayed in order, recovery is
idempotent — recovering the same stable store twice yields
byte-identical relations, which the property tests assert.

Redo is physical where it must be (record ids are replayed onto the
same page/slot they were logged against, verified as they land) and
logical where the original operation was (index builds re-run
``build()`` over the heap state at the record's log position, which by
induction equals the pre-crash heap state at build time).

Traffic epochs are journaled in the same log but are *graph* state,
not relation state; :func:`replay_epochs` replays them onto a base
graph so serving layers resync to the last journaled fingerprint.

Recovery reads bill ``wal_reads``; redone heap operations bill the
normal Table 4A charges on the recovering database's own ledger, so
the cost of coming back up is itself measurable (scenario E13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import RecoveryError
from repro.storage.page import DEFAULT_BLOCK_SIZE, Page
from repro.wal.records import Record, schema_from_spec


@dataclass
class RecoveryReport:
    """What one recovery pass did."""

    snapshot_loaded: bool = False
    records_replayed: int = 0
    epochs_skipped: int = 0
    tuples_redone: int = 0
    relations: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "snapshot_loaded": self.snapshot_loaded,
            "records_replayed": self.records_replayed,
            "epochs_skipped": self.epochs_skipped,
            "tuples_redone": self.tuples_redone,
            "relations": list(self.relations),
        }


def recover_database(
    log,
    name: Optional[str] = None,
    buffer_capacity: int = 0,
    block_size: int = DEFAULT_BLOCK_SIZE,
    stats=None,
    injector=None,
):
    """Rebuild a Database from a write-ahead log's stable store.

    Returns the recovered :class:`~repro.storage.database.Database`
    with the log re-attached (so post-recovery mutations keep
    journaling) and a :class:`RecoveryReport` stashed on
    ``db.last_recovery``.
    """
    from repro.storage.database import Database

    db = Database(
        name=name or "atis",
        buffer_capacity=buffer_capacity,
        block_size=block_size,
        stats=stats,
        injector=injector,
    )
    # Bind the log to the recovering ledger up front so the snapshot
    # and redo-scan reads are billed as wal_reads (recovery cost is
    # part of scenario E13's measurement).
    log.bind(db.stats, injector)
    report = RecoveryReport()
    snapshot = log.read_snapshot()
    if snapshot is not None:
        _, snap_name, state = snapshot
        if name is None:
            db.name = snap_name
        _restore_state(db, state, report)
        report.snapshot_loaded = True
    for record in log.records():
        if record[0] == "epoch":
            report.epochs_skipped += 1
            continue
        _redo(db, record, report)
        report.records_replayed += 1
    report.relations = sorted(db.relation_names())
    db.attach_wal(log)
    db.last_recovery = report
    return db


def replay_epochs(log, graph, feed=None) -> int:
    """Re-apply journaled traffic epochs onto a base-cost graph.

    With a ``feed`` the epochs fan out to its subscribers (mirrors,
    services); without one the costs are applied directly. Returns the
    number of epochs replayed. The graph must be at the costs it had
    when journaling began (a freshly built copy), so sequential replay
    lands it on the last journaled epoch's costs.
    """
    replayed = 0
    for record in log.records():
        if record[0] != "epoch":
            continue
        _, _number, deltas, _prev_fp, _new_fp, minutes = record
        updates = [(u, v, cost) for u, v, cost in deltas]
        if feed is not None:
            feed.apply(updates, minutes=minutes)
        else:
            graph.apply_cost_updates(updates)
        replayed += 1
    return replayed


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------
def _restore_state(db, state, report: RecoveryReport) -> None:
    """Rebuild relations from a checkpoint snapshot (physical pages,
    logical index rebuilds)."""
    for rel_name, sspec, pages, isam_spec, hash_spec in state:
        relation = db.create_relation(schema_from_spec(sspec), name=rel_name)
        relation.heap.pages = [Page.from_snapshot(p) for p in pages]
        relation.heap._tuple_count = sum(
            p.tuple_count for p in relation.heap.pages
        )
        report.tuples_redone += relation.heap._tuple_count
        # Restoring pages is the redo pass writing blocks back out.
        db.stats.charge_write(len(pages))
        if isam_spec is not None:
            key_field, fanout = isam_spec
            relation.create_isam_index(key_field, fanout=fanout)
        if hash_spec is not None:
            key_field, bucket_count = hash_spec
            relation.create_hash_index(key_field, bucket_count=bucket_count)


def _redo(db, record: Record, report: RecoveryReport) -> None:
    kind = record[0]
    if kind == "create":
        _, name, sspec = record
        db.create_relation(schema_from_spec(sspec), name=name)
    elif kind == "drop":
        db.drop_relation(record[1])
    elif kind == "insert":
        _, file_name, rid, row = record
        relation = db.relation(file_name)
        new_rid = relation.insert(relation.schema.as_dict(row))
        if tuple(new_rid) != tuple(rid):
            raise RecoveryError(
                f"redo of insert into {file_name!r} landed at {new_rid}, "
                f"logged {tuple(rid)}; log and heap have diverged"
            )
        report.tuples_redone += 1
    elif kind == "update":
        _, file_name, rid, row = record
        heap = db.relation(file_name).heap
        heap.update(tuple(rid), heap.schema.as_dict(row))
        report.tuples_redone += 1
    elif kind == "delete":
        _, file_name, rid = record
        db.relation(file_name).heap.delete(tuple(rid))
        report.tuples_redone += 1
    elif kind == "batch":
        _, file_name, entries = record
        heap = db.relation(file_name).heap
        touched_pages = set()
        for rid, row in entries:
            page_no, slot = rid
            heap._page(page_no).update(slot, tuple(row))
            touched_pages.add(page_no)
            report.tuples_redone += 1
        # Mirror batch_update's block-level charge shape.
        db.stats.charge_update(2 * len(touched_pages))
    elif kind == "load":
        _, file_name, rows = record
        relation = db.relation(file_name)
        schema = relation.schema
        relation.bulk_load(schema.as_dict(row) for row in rows)
        report.tuples_redone += len(rows)
    elif kind == "truncate":
        db.relation(record[1]).truncate()
    elif kind == "index":
        _, rel_name, index_kind, key_field, param = record
        relation = db.relation(rel_name)
        if index_kind == "isam":
            relation.create_isam_index(key_field, fanout=param)
        elif index_kind == "hash":
            relation.create_hash_index(key_field, bucket_count=param)
        else:
            raise RecoveryError(f"unknown index kind {index_kind!r} in log")
    else:
        raise RecoveryError(f"unknown log record kind {kind!r}")
