"""Tests for the analytical cost model (Section 4)."""

import pytest

from repro.exceptions import CostModelError
from repro.costmodel.dijkstra_model import (
    best_first_cleanup_cost,
    best_first_init_cost,
    best_first_iteration_cost,
    predict_best_first,
)
from repro.costmodel.iterative_model import (
    iterative_init_cost,
    iterative_iteration_cost,
    predict_iterative,
)
from repro.costmodel.join_cost import (
    hash_join_cost,
    join_cost,
    nested_loop_cost,
    primary_key_cost,
    sort_merge_cost,
)
from repro.costmodel.params import (
    CostParameters,
    PAPER_TABLE_4A,
    parameters_for_grid,
)
from repro.costmodel.predictor import (
    predict_from_iterations,
    prediction_error,
    table_4b,
)
from repro.experiments.paper_data import TABLE_4B, TABLE_6


class TestParameters:
    def test_table_4a_blocking_factors(self):
        assert PAPER_TABLE_4A.bf_s == 128
        assert PAPER_TABLE_4A.bf_r == 256
        assert PAPER_TABLE_4A.bf_rs in (85, 86)

    def test_table_4a_block_counts(self):
        assert PAPER_TABLE_4A.edge_blocks == 28  # ceil(3480 / 128)
        assert PAPER_TABLE_4A.node_blocks == 4  # ceil(900 / 256)

    def test_for_graph_rederives_sizes(self):
        params = PAPER_TABLE_4A.for_graph(400, 1520)
        assert params.node_tuples == 400
        assert params.edge_tuples == 1520
        assert params.adjacency == pytest.approx(1520 / 400)
        assert params.t_read == PAPER_TABLE_4A.t_read  # constants carry

    def test_parameters_for_grid_30_matches_table_4a(self):
        params = parameters_for_grid(30)
        assert params.node_tuples == 900
        assert params.edge_tuples == 3480
        assert params.index_levels == 3

    def test_validation(self):
        with pytest.raises(CostModelError):
            CostParameters(t_read=-1.0).validate()
        with pytest.raises(CostModelError):
            CostParameters(index_levels=0).validate()
        with pytest.raises(CostModelError):
            PAPER_TABLE_4A.for_graph(0, 0)


class TestJoinCost:
    def test_nested_loop_matches_paper_formula(self):
        # F = B1*t_read + B1*B2*t_read + B3*t_write
        cost = nested_loop_cost(1, 28, 1, PAPER_TABLE_4A)
        assert cost == pytest.approx(0.035 + 28 * 0.035 + 0.05)

    def test_hash_cheaper_than_nested_loop_for_big_inputs(self):
        assert hash_join_cost(4, 28, 2, PAPER_TABLE_4A) < nested_loop_cost(
            4, 28, 2, PAPER_TABLE_4A
        )

    def test_sort_merge_has_sort_overhead(self):
        assert sort_merge_cost(4, 28, 2, PAPER_TABLE_4A) > hash_join_cost(
            4, 28, 2, PAPER_TABLE_4A
        )

    def test_primary_key_wins_single_tuple_outer(self):
        cost, strategy = join_cost(1, 28, 1, PAPER_TABLE_4A, outer_tuples=1)
        assert strategy == "primary-key"

    def test_forced_strategy(self):
        cost, strategy = join_cost(
            1, 28, 1, PAPER_TABLE_4A, strategy="nested-loop"
        )
        assert strategy == "nested-loop"
        assert cost == pytest.approx(nested_loop_cost(1, 28, 1, PAPER_TABLE_4A))

    def test_unknown_strategy(self):
        with pytest.raises(CostModelError):
            join_cost(1, 1, 1, PAPER_TABLE_4A, strategy="quantum")

    def test_negative_blocks_rejected(self):
        with pytest.raises(CostModelError):
            nested_loop_cost(-1, 1, 1, PAPER_TABLE_4A)


class TestIterativeModel:
    def test_init_cost_components_positive(self):
        assert iterative_init_cost(PAPER_TABLE_4A) > PAPER_TABLE_4A.create_cost

    def test_iteration_count_required(self):
        with pytest.raises(CostModelError):
            iterative_iteration_cost(PAPER_TABLE_4A, 0)

    def test_total_is_init_plus_iterations(self):
        breakdown = predict_iterative(PAPER_TABLE_4A, 59)
        assert breakdown.total == pytest.approx(
            breakdown.init_cost + 59 * breakdown.per_iteration_cost
        )

    def test_path_insensitive(self):
        """Same predicted cost whatever the query (B(L) fixed)."""
        a = predict_iterative(PAPER_TABLE_4A, 59)
        b = predict_iterative(PAPER_TABLE_4A, 59, current_tuples=900 / 59)
        assert a.total == pytest.approx(b.total)


class TestBestFirstModel:
    def test_total_composition(self):
        breakdown = predict_best_first(PAPER_TABLE_4A, 899, path_length=58)
        assert breakdown.total == pytest.approx(
            breakdown.init_cost
            + 899 * breakdown.per_iteration_cost
            + breakdown.cleanup_cost
        )

    def test_init_shared_with_iterative(self):
        assert best_first_init_cost(PAPER_TABLE_4A) == pytest.approx(
            iterative_init_cost(PAPER_TABLE_4A)
        )

    def test_cleanup_scales_with_path_length(self):
        short = best_first_cleanup_cost(PAPER_TABLE_4A, 10)
        long = best_first_cleanup_cost(PAPER_TABLE_4A, 60)
        assert long > short

    def test_update_fraction_validated(self):
        with pytest.raises(CostModelError):
            best_first_iteration_cost(PAPER_TABLE_4A, update_fraction=1.5)

    def test_negative_values_rejected(self):
        with pytest.raises(CostModelError):
            predict_best_first(PAPER_TABLE_4A, -1)
        with pytest.raises(CostModelError):
            best_first_cleanup_cost(PAPER_TABLE_4A, -1)


class TestPredictor:
    def test_unknown_algorithm(self):
        with pytest.raises(CostModelError):
            predict_from_iterations("warshall", 10, PAPER_TABLE_4A)

    def test_prediction_error(self):
        assert prediction_error(110.0, 100.0) == pytest.approx(0.1)
        with pytest.raises(CostModelError):
            prediction_error(1.0, 0.0)

    def test_table_4b_reproduces_paper_within_15_percent(self):
        """Feeding the paper's Table 6 iterations into the model must
        land within 15% of every published Table 4B best-first cell."""
        iterations = {
            "dijkstra": dict(TABLE_6["dijkstra"]),
            "astar": dict(TABLE_6["astar-v3"]),
            "iterative": dict(TABLE_6["iterative"]),
        }
        lengths = {"horizontal": 29, "semi-diagonal": 44, "diagonal": 58}
        estimates = table_4b(PAPER_TABLE_4A, iterations, lengths)
        for algorithm, paper_key in (
            ("dijkstra", "dijkstra"), ("astar", "astar-v3"),
        ):
            for path, published in TABLE_4B[paper_key].items():
                ours = estimates[algorithm][path]
                assert abs(ours - published) / published < 0.15, (
                    algorithm, path, ours, published,
                )

    def test_table_4b_preserves_paper_orderings(self):
        iterations = {
            "dijkstra": dict(TABLE_6["dijkstra"]),
            "astar": dict(TABLE_6["astar-v3"]),
            "iterative": dict(TABLE_6["iterative"]),
        }
        estimates = table_4b(PAPER_TABLE_4A, iterations)
        # Horizontal: A* << Iterative < Dijkstra.
        assert estimates["astar"]["horizontal"] < estimates["iterative"]["horizontal"]
        assert estimates["iterative"]["horizontal"] < estimates["dijkstra"]["horizontal"]
        # Diagonal: Iterative << A* < Dijkstra.
        assert estimates["iterative"]["diagonal"] < estimates["astar"]["diagonal"]
        assert estimates["astar"]["diagonal"] < estimates["dijkstra"]["diagonal"]
