"""Property tests: fleet partition invariants on generated graphs.

tests/test_fleet_partition.py proves the cut invariants on fixed
grids; this module widens the net with Hypothesis-generated inputs —
both paper grids (the geometry the cut was designed for) and arbitrary
directed graphs with float coordinates, where cells can land empty and
the dense shard renumbering has to hold the invariants together:

* repeating a cut on unchanged graph state reproduces the identical
  partition (same ``signature``, same assignment, same cut);
* every parent node lands in exactly one shard;
* every parent edge is internal to exactly one shard XOR a cut edge.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fleet.partition import partition_graph
from repro.graphs.graph import Graph
from repro.graphs.grid import make_paper_grid

pytestmark = [pytest.mark.fleet, pytest.mark.fleetchaos]

_COSTS = st.floats(
    min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False
)
_COORDS = st.floats(min_value=-10, max_value=10, allow_nan=False)
_LAYOUTS = st.tuples(
    st.integers(min_value=1, max_value=3), st.integers(min_value=1, max_value=3)
)

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_digraphs(draw, max_nodes=16):
    """Arbitrary directed graphs; coordinate clumping leaves cells empty."""
    node_count = draw(st.integers(min_value=1, max_value=max_nodes))
    graph = Graph(name="hypothesis-fleet")
    for index in range(node_count):
        graph.add_node(index, draw(_COORDS), draw(_COORDS))
    possible = [
        (u, v) for u in range(node_count) for v in range(node_count) if u != v
    ]
    chosen = (
        draw(
            st.lists(
                st.sampled_from(possible),
                max_size=3 * node_count,
                unique=True,
            )
        )
        if possible
        else []
    )
    for u, v in chosen:
        graph.add_edge(u, v, draw(_COSTS))
    return graph


@st.composite
def random_grids(draw):
    side = draw(st.integers(min_value=2, max_value=6))
    model = draw(st.sampled_from(["uniform", "variance"]))
    seed = draw(st.integers(min_value=0, max_value=999))
    return make_paper_grid(side, model, seed=seed)


def assert_partition_invariants(graph, rows, cols):
    partition = partition_graph(graph, rows, cols)
    # validate() re-checks the full structural contract internally.
    partition.validate()

    # Every node in exactly one shard.
    assigned = {}
    for shard in partition.shards:
        for node_id in shard.nodes:
            assert node_id not in assigned, (
                f"node {node_id!r} in shards {assigned[node_id]} "
                f"and {shard.shard_id}"
            )
            assigned[node_id] = shard.shard_id
    assert set(assigned) == set(graph.node_ids())

    # Dense shard ids 0..n-1 even when cells came up empty.
    assert [s.shard_id for s in partition.shards] == list(
        range(len(partition.shards))
    )

    # Every parent edge internal to exactly one shard XOR in the cut.
    cut = {(c.source, c.target) for c in partition.cut_edges}
    shard_by_id = {s.shard_id: s for s in partition.shards}
    for edge in graph.edges():
        key = (edge.source, edge.target)
        same_shard = assigned[edge.source] == assigned[edge.target]
        assert same_shard != (key in cut)
        if same_shard:
            owner = shard_by_id[assigned[edge.source]]
            assert owner.graph.edge_cost(edge.source, edge.target) == edge.cost
    return partition


class TestPartitionProperties:
    @_SETTINGS
    @given(graph=random_digraphs(), layout=_LAYOUTS)
    def test_invariants_on_random_digraphs(self, graph, layout):
        assert_partition_invariants(graph, *layout)

    @_SETTINGS
    @given(graph=random_grids(), layout=_LAYOUTS)
    def test_invariants_on_random_grids(self, graph, layout):
        assert_partition_invariants(graph, *layout)

    @_SETTINGS
    @given(graph=random_digraphs(), layout=_LAYOUTS)
    def test_signature_stable_across_repeated_cuts(self, graph, layout):
        rows, cols = layout
        first = partition_graph(graph, rows, cols)
        second = partition_graph(graph, rows, cols)
        assert first.signature == second.signature
        assert [s.nodes for s in first.shards] == [
            s.nodes for s in second.shards
        ]
        assert [
            (c.source, c.target) for c in first.cut_edges
        ] == [(c.source, c.target) for c in second.cut_edges]

    @_SETTINGS
    @given(graph=random_grids(), layout=_LAYOUTS)
    def test_signature_tracks_graph_state(self, graph, layout):
        rows, cols = layout
        before = partition_graph(graph, rows, cols).signature
        edge = next(iter(graph.edges()))
        graph.apply_cost_updates([(edge.source, edge.target, edge.cost + 1.0)])
        after = partition_graph(graph, rows, cols).signature
        assert before != after
