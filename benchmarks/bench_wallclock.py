"""Pinned wall-clock trajectory: CSR fastpath vs the dict baseline.

Runs the :mod:`repro.experiments.wallclock` harness scenario by
scenario (fixed grid, seed, pair, and batch — see ``WallclockConfig``)
and writes the full report to ``BENCH_wallclock.json`` at the repo
root, so successive commits can be compared on wall-clock seconds.

Each scenario is one test contributing its timing to the shared
report; the emitter only writes when **every** scenario in
``EXPECTED_SCENARIOS`` completed, so an interrupted or filtered run
(-k, -x, Ctrl-C) can never overwrite a complete report with a partial
one. The Dijkstra test also asserts the CSR tier still beats the dict
tier on the pinned workload — the ratio CI enforces.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.wallclock import (
    EXPECTED_SCENARIOS,
    WallclockConfig,
    WallclockReport,
    run_wallclock,
)

_CONFIG = WallclockConfig()
_REPORT = WallclockReport(config=_CONFIG)


@pytest.fixture(scope="module", autouse=True)
def _emit_report_json():
    yield
    if _REPORT.complete:
        path = Path(__file__).resolve().parent.parent / "BENCH_wallclock.json"
        path.write_text(_REPORT.to_json() + "\n")


def _run(*scenarios: str) -> None:
    partial = run_wallclock(_CONFIG, scenarios=scenarios)
    _REPORT.timings.update(partial.timings)
    _REPORT.overheads.update(partial.overheads)


def test_wallclock_dijkstra_tiers():
    """dict baseline vs CSR cold (build in the timed region) vs warm.

    Asserts the acceptance ratio: warm CSR must beat the dict loop on
    the pinned corner-to-corner Dijkstra.
    """
    _run("dijkstra/dict", "dijkstra/csr-cold", "dijkstra/csr-warm")
    speedup = _REPORT.speedup("dijkstra/dict", "dijkstra/csr-warm")
    print()
    print(f"pinned Dijkstra: CSR warm is {speedup:.2f}x the dict tier")
    assert speedup > 1.0


def test_wallclock_astar_tiers():
    _run("astar-euclidean/dict", "astar-euclidean/csr", "astar-landmark/csr")
    assert "landmark-preprocess" in _REPORT.overheads


def test_wallclock_iterative_tiers():
    _run("iterative/dict", "iterative/csr")


def test_wallclock_plan_many_batches():
    _run("plan_many/cold", "plan_many/warm")
    # A replayed batch is pure cache hits; if warm isn't dramatically
    # faster the service cache is broken, not slow.
    assert _REPORT.speedup("plan_many/cold", "plan_many/warm") > 1.0


def test_wallclock_report_complete():
    """Runs last: the module produced every scenario and valid JSON."""
    assert _REPORT.complete, _REPORT.missing
    payload = json.loads(_REPORT.to_json())
    assert set(payload["scenarios"]) == set(EXPECTED_SCENARIOS)
    assert "dijkstra_csr_vs_dict" in payload["speedups"]
