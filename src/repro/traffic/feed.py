"""TrafficFeed: batched, versioned edge-cost epochs with fan-out.

The repo's original traffic story was one ``update_edge_cost`` call
per reading: every call bumped the graph fingerprint, nuked the whole
result cache and silently left the relational tier's S relation stale.
A real ATIS ingests *batches* — a probe-vehicle sweep, a loop-detector
cycle, an incident report — and the serving layers must absorb each
batch as one unit of staleness, not thousands.

:class:`TrafficFeed` is that ingestion point. Each :meth:`apply` is an
**epoch**: the batch is validated, applied under the graph's epoch
guard with a single fingerprint bump, materialised as a
:class:`TrafficEpoch` (the effective :class:`CostDelta` records plus
the before/after fingerprints), and fanned out to subscribers in
registration order. The stock subscribers are

* ``RouteService.handle_epoch`` — edge-granular cache invalidation and
  estimator-pool refresh;
* ``RelationalGraph.handle_epoch`` — marks the touched adjacency
  blocks dirty so the next engine run re-fetches them (charged at the
  paper's I/O rates) instead of serving stale costs.

The feed snapshots every edge's *base* cost at construction, so
congestion profiles always multiply the free-flow baseline — epochs
never compound onto each other's output.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.graphs.graph import CostDelta, Graph, NodeId

EdgeKey = Tuple[NodeId, NodeId]


@dataclass(frozen=True)
class TrafficEpoch:
    """One applied batch of edge-cost deltas.

    ``previous_fingerprint`` -> ``fingerprint`` is the single version
    step the batch performed; ``deltas`` holds only the *effective*
    changes (no-op refreshes are dropped by the graph). ``minutes`` is
    the simulation clock the batch was generated for, when one exists.
    """

    number: int
    graph: Graph
    deltas: Tuple[CostDelta, ...]
    previous_fingerprint: Tuple[int, int]
    fingerprint: Tuple[int, int]
    minutes: Optional[float] = None

    @property
    def edges(self) -> Tuple[EdgeKey, ...]:
        """The directed edges this epoch touched."""
        return tuple((d.source, d.target) for d in self.deltas)

    def __repr__(self) -> str:
        return (
            f"TrafficEpoch(#{self.number}, {len(self.deltas)} deltas, "
            f"{self.previous_fingerprint} -> {self.fingerprint})"
        )


class TrafficFeed:
    """Apply batched cost updates to one graph and notify subscribers."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self._base: Dict[EdgeKey, float] = {
            (edge.source, edge.target): edge.cost for edge in graph.edges()
        }
        #: ``(handler, kind)`` pairs; kind is "customize" or "invalidate".
        self._listeners: List[Tuple[Callable[[TrafficEpoch], object], str]] = []
        self._customize_listeners = 0
        self._invalidate_listeners = 0
        self._lock = threading.Lock()
        self.epoch_count = 0
        self.deltas_applied = 0
        self.customize_notifications = 0
        self.invalidate_notifications = 0
        self.last_epoch: Optional[TrafficEpoch] = None

    # ------------------------------------------------------------------
    # subscription
    # ------------------------------------------------------------------
    def subscribe(self, listener) -> None:
        """Register a subscriber for future epochs.

        ``listener`` is either a callable taking the
        :class:`TrafficEpoch`, or an object exposing one of the two
        epoch verbs — ``customize_epoch`` (preferred when present: the
        listener *re-prices* precomputed state, e.g. an
        :class:`~repro.kernel.accel.Accelerator` overlay) or
        ``handle_epoch`` (the invalidation path: a ``RouteService`` or
        ``RelationalGraph`` drops/marks state). The two verbs are
        counted separately in :meth:`snapshot` — the customize path is
        what distinguishes "the epoch re-weighted the overlay" from
        "the epoch threw work away". Subscribers are notified in
        registration order, after the batch is fully applied and the
        fingerprint bumped.
        """
        customizer = getattr(listener, "customize_epoch", None)
        handler = customizer if callable(customizer) else None
        if handler is None:
            handler = getattr(listener, "handle_epoch", None)
            if not callable(handler):
                handler = listener
        kind = (
            "customize"
            if customizer is not None and handler is customizer
            else "invalidate"
        )
        # Idempotent: re-subscribing must not double-invalidate. Bound
        # methods compare equal when __self__ and __func__ match.
        if all(existing != handler for existing, _ in self._listeners):
            self._listeners.append((handler, kind))
            if kind == "customize":
                self._customize_listeners += 1
            else:
                self._invalidate_listeners += 1

    # ------------------------------------------------------------------
    # epochs
    # ------------------------------------------------------------------
    def apply(
        self,
        updates: Iterable[Tuple[NodeId, NodeId, float]],
        minutes: Optional[float] = None,
    ) -> TrafficEpoch:
        """Apply one batch of absolute edge costs as a single epoch.

        The entire batch is validated before any write (one bad
        reading rejects the batch, it cannot half-apply), costs change
        under the graph's epoch guard with exactly one fingerprint
        bump, and subscribers see the epoch only once it is fully
        applied. A batch with no effective change produces an epoch
        with no deltas, an unchanged fingerprint and no notification.
        """
        with self._lock:
            previous = self.graph.fingerprint
            deltas = tuple(self.graph.apply_cost_updates(updates))
            epoch = TrafficEpoch(
                number=self.epoch_count + 1 if deltas else self.epoch_count,
                graph=self.graph,
                deltas=deltas,
                previous_fingerprint=previous,
                fingerprint=self.graph.fingerprint,
                minutes=minutes,
            )
            if not deltas:
                return epoch
            self.epoch_count = epoch.number
            self.deltas_applied += len(deltas)
            self.last_epoch = epoch
            # Notify every subscriber even when one raises (a fault
            # injected inside a handler must not starve the rest of the
            # epoch — a skipped RelationalGraph would serve stale costs
            # with nothing recording the gap, whereas a handler that
            # misses an epoch entirely breaks its fingerprint chain and
            # conservatively full-reloads). The first failure is
            # re-raised after the fan-out completes.
            first_failure: Optional[BaseException] = None
            for listener, kind in self._listeners:
                if kind == "customize":
                    self.customize_notifications += 1
                else:
                    self.invalidate_notifications += 1
                try:
                    listener(epoch)
                except BaseException as exc:  # noqa: BLE001 - refanned below
                    if first_failure is None:
                        first_failure = exc
            if first_failure is not None:
                raise first_failure
            return epoch

    def tick(
        self,
        profile,
        minutes: float,
        edges: Optional[Sequence[EdgeKey]] = None,
    ) -> TrafficEpoch:
        """Advance the simulation clock: re-price edges under a profile.

        Each edge's new cost is ``base_cost * profile.multiplier(u, v,
        minutes)`` — always relative to the free-flow baseline recorded
        at feed construction, so a day of ticks ends where it started.
        ``edges`` restricts the sweep (e.g. only arterials carry
        sensors); default is every edge of the graph.
        """
        targets = edges if edges is not None else list(self._base)
        updates = [
            (u, v, self._base[(u, v)] * profile.multiplier(u, v, minutes))
            for u, v in targets
        ]
        return self.apply(updates, minutes=minutes)

    def spike(
        self,
        edges: Sequence[EdgeKey],
        factor: float,
        minutes: Optional[float] = None,
    ) -> TrafficEpoch:
        """Multiply the *current* cost of ``edges`` by ``factor``.

        Unlike :meth:`tick` this compounds deliberately — an incident
        on top of whatever congestion already holds. ``factor`` below
        1.0 models clearing."""
        updates = [
            (u, v, self.graph.edge_cost(u, v) * factor) for u, v in edges
        ]
        return self.apply(updates, minutes=minutes)

    def rebase(self) -> None:
        """Re-snapshot current costs as the new free-flow baseline."""
        with self._lock:
            self._base = {
                (edge.source, edge.target): edge.cost
                for edge in self.graph.edges()
            }

    def base_cost(self, u: NodeId, v: NodeId) -> float:
        """The free-flow baseline cost the profiles multiply."""
        return self._base[(u, v)]

    def snapshot(self) -> Dict[str, float]:
        """Counter view, shaped like the other layers' snapshots."""
        return {
            "epochs": self.epoch_count,
            "deltas_applied": self.deltas_applied,
            "edges_tracked": len(self._base),
            "customize_listeners": self._customize_listeners,
            "invalidate_listeners": self._invalidate_listeners,
            "customize_notifications": self.customize_notifications,
            "invalidate_notifications": self.invalidate_notifications,
        }

    def __repr__(self) -> str:
        return (
            f"TrafficFeed({self.graph.name!r}, epochs={self.epoch_count}, "
            f"deltas={self.deltas_applied})"
        )
