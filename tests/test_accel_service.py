"""Accelerator pipeline wired through the serving layers.

The kernel suite (tests/test_accel.py) proves the accelerators exact in
isolation; this one proves the plumbing: RouteService routes eligible
queries through its per-graph accelerator and re-*customizes* on
traffic epochs (never serving stale answers, never re-preprocessing),
the TrafficFeed classifies accelerators as customize listeners and the
service as an invalidate listener, the estimator pool bills its
preparation time along the same phase boundary, and a fleet of
accelerated shard workers answers boundary cliques with point queries
while staying cost-exact against whole-graph Dijkstra.
"""

from __future__ import annotations

import math
import random

import pytest

from repro import kernel
from repro.fleet import FleetRouter, partition_graph
from repro.graphs.grid import make_paper_grid
from repro.service.pool import EstimatorPool
from repro.service.service import RouteService
from repro.traffic.feed import TrafficFeed

pytestmark = pytest.mark.accel


def _exact(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)


def _epoch_updates(graph, number, stride=9):
    edges = sorted((e.source, e.target) for e in graph.edges())
    return [
        (u, v, graph.edge_cost(u, v) * (0.7 + 0.2 * ((number + i) % 4)))
        for i, (u, v) in enumerate(edges[::stride])
    ]


class TestServiceAccel:
    def test_bad_accelerator_name_rejected(self):
        with pytest.raises(ValueError) as excinfo:
            RouteService(accelerator="warp-drive")
        message = str(excinfo.value)
        assert "cch" in message and "dijkstra" in message

    def test_accelerated_dijkstra_exact_across_epochs(self):
        graph = make_paper_grid(7, seed=11)
        service = RouteService(
            accelerator="cch",
            default_algorithm="dijkstra",
            default_estimator="zero",
        )
        feed = TrafficFeed(graph)
        feed.subscribe(service)
        nodes = sorted(node.node_id for node in graph.nodes())
        pairs = [(s, d) for s in nodes[::6] for d in nodes[::6]]

        def check_round():
            for source, destination in pairs:
                served = service.plan(graph, source, destination)
                ref = kernel.search(graph, source, destination, tier="dict")
                assert served.found == ref.found
                if ref.found:
                    assert _exact(served.cost, ref.cost)

        check_round()
        for number in range(1, 4):
            feed.apply(_epoch_updates(graph, number))
            check_round()
        snap = service.snapshot()
        assert snap["accel_instances"] == 1
        assert snap["accel_preprocesses"] == 1
        # One initial full pass plus one customize per absorbed epoch.
        assert snap["accel_customizes"] >= 4
        assert snap["accel_queries_served"] > 0
        assert snap["accel_customize_time_s"] > 0
        assert snap["accel_preprocess_time_s"] > 0

    def test_cch_serves_dijkstra_only(self):
        graph = make_paper_grid(5, seed=3)
        service = RouteService(accelerator="cch", default_estimator="zero")
        service.plan(graph, (0, 0), (4, 4), algorithm="astar")
        service.plan(graph, (0, 0), (4, 4), algorithm="iterative")
        assert service.snapshot()["accel_queries_served"] == 0
        service.plan(graph, (0, 0), (4, 4), algorithm="dijkstra")
        assert service.snapshot()["accel_queries_served"] == 1

    def test_one_stage_serves_own_algorithm_only(self):
        graph = make_paper_grid(5, seed=3)
        service = RouteService(
            accelerator="bidirectional", default_estimator="zero"
        )
        service.plan(graph, (0, 0), (4, 4), algorithm="dijkstra")
        assert service.snapshot()["accel_queries_served"] == 0
        served = service.plan(graph, (0, 0), (4, 4), algorithm="bidirectional")
        ref = kernel.search(graph, (0, 0), (4, 4), tier="dict")
        assert _exact(served.cost, ref.cost)
        assert service.snapshot()["accel_queries_served"] == 1

    def test_feed_listener_kinds(self):
        """The service invalidates; the accelerator object customizes.

        RouteService must keep exposing ``handle_epoch`` only — growing
        a ``customize_epoch`` method would make the feed prefer it and
        silently skip cache invalidation.
        """
        graph = make_paper_grid(4, seed=1)
        service = RouteService(accelerator="cch")
        assert not hasattr(service, "customize_epoch")
        feed = TrafficFeed(graph)
        feed.subscribe(service)
        snap = feed.snapshot()
        assert snap["invalidate_listeners"] == 1
        assert snap["customize_listeners"] == 0
        service.plan(graph, (0, 0), (3, 3), algorithm="dijkstra")
        feed.subscribe(service.accelerator_instance(graph))
        snap = feed.snapshot()
        assert snap["customize_listeners"] == 1

    def test_epoch_never_builds_an_instance(self):
        """Customization in the traffic path touches existing overlays
        only — building one there would charge preprocess to traffic."""
        graph = make_paper_grid(4, seed=1)
        service = RouteService(accelerator="cch")
        feed = TrafficFeed(graph)
        feed.subscribe(service)
        feed.apply(_epoch_updates(graph, 1, stride=5))
        assert service.snapshot()["accel_instances"] == 0

    def test_update_edge_cost_recustomizes(self):
        graph = make_paper_grid(5, seed=7)
        service = RouteService(
            accelerator="cch",
            default_algorithm="dijkstra",
            default_estimator="zero",
        )
        service.plan(graph, (0, 0), (4, 4))
        before = service.snapshot()["accel_customizes"]
        service.update_edge_cost(graph, (0, 0), (0, 1), 25.0)
        assert service.snapshot()["accel_customizes"] == before + 1
        served = service.plan(graph, (0, 0), (4, 4))
        ref = kernel.search(graph, (0, 0), (4, 4), tier="dict")
        assert _exact(served.cost, ref.cost)
        assert service.snapshot()["accel_preprocesses"] == 1

    def test_pool_bills_both_pipeline_phases(self):
        graph = make_paper_grid(6, seed=2)
        pool = EstimatorPool(
            estimator_kwargs={"landmark": {"landmarks": "farthest:3"}}
        )
        service = RouteService(estimator_pool=pool)
        service.plan(graph, (0, 0), (5, 5), algorithm="astar", estimator="landmark")
        snap = pool.snapshot()
        assert snap["preprocess_time_s"] > 0
        assert snap["customize_time_s"] == 0
        service.update_edge_cost(graph, (0, 0), (0, 1), 30.0)
        snap = pool.snapshot()
        assert snap["refreshed"] >= 1
        assert snap["customize_time_s"] > 0


class TestFleetAccel:
    def test_accelerated_fleet_exact_across_epochs(self):
        graph = make_paper_grid(8, "variance", seed=17)
        partition = partition_graph(graph, 2, 2)
        router = FleetRouter(partition, accelerator="cch")
        feed = TrafficFeed(graph)
        feed.subscribe(router)
        try:
            rng = random.Random(9)
            nodes = list(graph.node_ids())

            def check_round():
                for _ in range(25):
                    source = rng.choice(nodes)
                    destination = rng.choice(nodes)
                    result = router.plan(source, destination)
                    ref = kernel.search(graph, source, destination)
                    assert result.found == ref.found
                    if ref.found:
                        assert _exact(result.cost, ref.cost)

            check_round()
            for number in range(1, 4):
                feed.apply(_epoch_updates(graph, number, stride=11))
                check_round()
            snap = router.snapshot()
            assert snap["fleet"]["accelerated"] == 1
            shard = snap["shard_0"]
            # Boundary cliques were answered by accelerator point
            # queries, against a single per-shard preprocess.
            assert shard["clique_point_queries"] > 0
            assert shard["accel_preprocesses"] == 1
            assert shard["accel_customizes"] >= 1
        finally:
            router.shutdown()

    def test_unaccelerated_fleet_has_no_point_queries(self):
        graph = make_paper_grid(6, seed=4)
        partition = partition_graph(graph, 1, 2)
        router = FleetRouter(partition)
        try:
            router.plan((0, 0), (5, 5))
            snap = router.snapshot()
            assert snap["fleet"]["accelerated"] == 0
            assert snap["shard_0"]["clique_point_queries"] == 0
            assert "accel_preprocesses" not in snap["shard_0"]
        finally:
            router.shutdown()
