"""Transitive-closure and all-pairs algorithms — the paper's backdrop.

Section 1.2 positions single-pair computation against the transitive
closure literature: "Previous evaluation of the transitive closure
algorithms examined the iterative, logarithmic, Warren's, Depth first
search (DFS), hybrid, and spanning-tree-based algorithms." These are
the algorithms ATIS would have inherited from 1980s database research —
they answer *every* pair at once, which is exactly the "irrelevant
computation" the paper's single-pair algorithms avoid.

This subpackage implements the classic family so the reproduction can
quantify the paper's motivating claim: for a traveller who wants one
route on a map whose costs change constantly, computing (and
recomputing) a closure is dramatically more work than a single-pair
search.

* :func:`seminaive_closure` — the iterative (semi-naive) fixpoint;
* :func:`warshall_closure` — Warshall's bit-style triple loop;
* :func:`warren_closure` — Warren's two-pass variant;
* :func:`logarithmic_closure` — repeated squaring of the adjacency
  relation (the "logarithmic" algorithm);
* :func:`dfs_closure` — one DFS per source node;
* :func:`floyd_warshall_paths` — the cost-aware all-pairs analogue
  (shortest path weights, not just reachability).
"""

from repro.closure.reachability import (
    dfs_closure,
    logarithmic_closure,
    seminaive_closure,
    warren_closure,
    warshall_closure,
)
from repro.closure.allpairs import (
    AllPairsResult,
    floyd_warshall_paths,
    repeated_dijkstra_paths,
)

__all__ = [
    "seminaive_closure",
    "warshall_closure",
    "warren_closure",
    "logarithmic_closure",
    "dfs_closure",
    "AllPairsResult",
    "floyd_warshall_paths",
    "repeated_dijkstra_paths",
]
