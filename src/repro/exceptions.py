"""Exception hierarchy for the ATIS path-computation reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while
still being able to distinguish graph problems from storage problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """Base class for graph-construction and graph-query errors."""


class NodeNotFoundError(GraphError, KeyError):
    """A node id was referenced that is not present in the graph."""

    def __init__(self, node_id: object) -> None:
        super().__init__(f"node {node_id!r} is not in the graph")
        self.node_id = node_id


class EdgeNotFoundError(GraphError, KeyError):
    """An edge was referenced that is not present in the graph."""

    def __init__(self, source: object, target: object) -> None:
        super().__init__(f"edge ({source!r} -> {target!r}) is not in the graph")
        self.source = source
        self.target = target


class DuplicateNodeError(GraphError, ValueError):
    """A node id was added twice to a graph."""

    def __init__(self, node_id: object) -> None:
        super().__init__(f"node {node_id!r} already exists in the graph")
        self.node_id = node_id


class NegativeEdgeCostError(GraphError, ValueError):
    """A negative edge cost was supplied.

    The correctness lemmas of the paper (Lemmas 1-3) require non-negative
    edge costs, so the planners refuse to run on graphs that violate it.
    """

    def __init__(self, source: object, target: object, cost: float) -> None:
        super().__init__(
            f"edge ({source!r} -> {target!r}) has negative cost {cost!r}; "
            "the single-pair planners require non-negative edge costs"
        )
        self.source = source
        self.target = target
        self.cost = cost


class InvalidEdgeCostError(GraphError, ValueError):
    """A non-finite (NaN or infinite) edge cost was supplied.

    NaN compares False against every bound, so ``cost < 0`` never
    catches it; a single NaN traffic reading would silently poison every
    path cost that touches the edge. Edge costs must be finite reals.
    """

    def __init__(self, source: object, target: object, cost: float) -> None:
        super().__init__(
            f"edge ({source!r} -> {target!r}) has non-finite cost {cost!r}; "
            "edge costs must be finite, non-negative reals"
        )
        self.source = source
        self.target = target
        self.cost = cost


class PathNotFoundError(ReproError):
    """No path exists between the requested source and destination."""

    def __init__(self, source: object, destination: object) -> None:
        super().__init__(f"no path from {source!r} to {destination!r}")
        self.source = source
        self.destination = destination


class PartitionError(GraphError):
    """A fleet partition is malformed or violated a structural invariant."""


class PlannerError(ReproError):
    """A planner was configured or invoked incorrectly."""


class UnknownAlgorithmError(PlannerError, KeyError):
    """The planner registry has no algorithm under the requested name."""

    def __init__(self, name: str, available: tuple = ()) -> None:
        message = f"unknown algorithm {name!r}"
        if available:
            message += f"; available: {', '.join(sorted(available))}"
        super().__init__(message)
        self.name = name
        self.available = tuple(available)


class StorageError(ReproError):
    """Base class for the relational storage substrate errors."""


class SchemaError(StorageError, ValueError):
    """A tuple did not match the relation schema."""


class RelationNotFoundError(StorageError, KeyError):
    """A relation name was referenced that the database catalog lacks."""

    def __init__(self, name: str) -> None:
        super().__init__(f"relation {name!r} does not exist")
        self.name = name


class DuplicateRelationError(StorageError, ValueError):
    """A relation name was created twice in the same database."""

    def __init__(self, name: str) -> None:
        super().__init__(f"relation {name!r} already exists")
        self.name = name


class IndexError_(StorageError):
    """An index was built or probed incorrectly.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class FaultError(StorageError):
    """Base class for injected *transient* faults (the chaos subsystem).

    Originally storage-only (raised when a
    :class:`repro.faults.FaultInjector` is attached); the fleet tier
    reuses the family for injected worker faults so one ``except``
    clause still catches everything a bounded retry may absorb. A
    stack without an injector or fault plan can never raise these.
    """


class TransientIOError(FaultError):
    """A block read or write failed transiently; a retry may succeed."""

    def __init__(self, site: str, operation: str = "read") -> None:
        super().__init__(
            f"transient {operation} error at {site} (injected fault)"
        )
        self.site = site
        self.operation = operation


class TornPageError(FaultError):
    """A page checksum mismatch was detected on read (torn page).

    The simulated re-read restores the block before this propagates,
    so retrying the access succeeds — the error models *detection*,
    which is what the per-page checksum buys.
    """

    def __init__(self, file_name: str, page_no: int) -> None:
        super().__init__(
            f"torn page detected: checksum mismatch on {file_name!r} "
            f"page {page_no} (injected fault)"
        )
        self.file_name = file_name
        self.page_no = page_no


class SimulatedCrash(StorageError):
    """Process death injected at a storage operation (the crash matrix).

    Deliberately *not* a :class:`FaultError`: a crash is not a
    transient condition a retry can absorb — it must propagate through
    every retry wrapper and degradation ladder so the driver can
    discard all volatile state and exercise recovery from the
    write-ahead log. Raised before the operation at ``op_index`` takes
    effect, so the killed operation is neither applied nor logged.
    """

    def __init__(self, site: str, op_index: int) -> None:
        super().__init__(
            f"simulated crash at storage op {op_index} ({site}); "
            "all volatile state is lost"
        )
        self.site = site
        self.op_index = op_index


class TransientWorkerError(FaultError):
    """A shard-worker task failed transiently (injected fleet fault).

    Raised inside the worker task *before* any computation ran, so a
    retry — on the same replica or a peer — starts from clean state.
    """

    def __init__(self, site: str, op_index: int) -> None:
        super().__init__(
            f"transient worker error at {site} (op {op_index}, injected fault)"
        )
        self.site = site
        self.op_index = op_index


class WorkerCrash(ReproError):
    """A shard worker (replica) died at a task boundary.

    The fleet analogue of :class:`SimulatedCrash`, and deliberately
    *not* a :class:`FaultError` for the same reason: a dead replica is
    not a transient condition a same-replica retry can absorb — the
    error must propagate through the retry wrapper so the router fails
    over to a healthy replica and the health checker marks this one
    dead. Raised before the task body runs, so the killed task never
    computed or mutated anything.
    """

    def __init__(self, shard_id: int, replica_index: int, op_index: int) -> None:
        super().__init__(
            f"worker shard {shard_id} replica {replica_index} crashed "
            f"at task op {op_index} (injected kill)"
        )
        self.shard_id = shard_id
        self.replica_index = replica_index
        self.op_index = op_index


class ShardUnavailableError(ReproError):
    """No serving replica is available for a shard (the shard is dark).

    Raised when a fleet operation needs a shard whose replicas are all
    crashed, lagging an epoch, or shut down. The router converts this
    into an explicit shed — a dark shard degrades availability, never
    correctness.
    """

    def __init__(self, shard_id: int, detail: str = "") -> None:
        message = f"shard {shard_id} is dark: no serving replica"
        if detail:
            message += f" ({detail})"
        super().__init__(message)
        self.shard_id = shard_id


class RecoveryError(StorageError):
    """The write-ahead log or checkpoint snapshot could not be replayed.

    A torn *tail* (partial final record) is expected after a crash and
    is truncated silently; this error marks real corruption — an
    unreadable checkpoint snapshot or a record that fails its CRC in
    the middle of the log.
    """


class RetriesExhaustedError(FaultError):
    """Bounded retry gave up; the operation failed permanently.

    Carries the phase the retries were attributed to and the last
    underlying fault, so the serving layer can count degradations per
    phase and surface the root cause.
    """

    def __init__(self, phase: str, attempts: int, cause: Exception = None) -> None:
        super().__init__(
            f"{phase}: {attempts} attempts failed; retries exhausted"
            + (f" (last fault: {cause})" if cause is not None else "")
        )
        self.phase = phase
        self.attempts = attempts
        self.cause = cause


class QueryError(ReproError):
    """Base class for query-processing errors (selects and joins)."""


class CostModelError(ReproError):
    """The analytical cost model was given inconsistent parameters."""


class ExperimentError(ReproError):
    """An experiment specification could not be run."""
