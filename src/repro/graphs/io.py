"""Graph serialization: CSV edge lists and a JSON document format.

The CSV format mirrors the paper's relational layout — a node file
(node-id, x, y) and an edge file (begin, end, cost) — so a graph can be
round-tripped through exactly the two relations the DBMS tier stores.
The JSON format bundles both in one self-describing document.

Node ids are serialized via ``repr`` and parsed back with a restricted
literal evaluator, so the tuple ids used by the grid and road-map
generators survive a round trip.
"""

from __future__ import annotations

import ast
import csv
import json
from pathlib import Path
from typing import Union

from repro.exceptions import GraphError
from repro.graphs.graph import Graph

PathLike = Union[str, Path]


def _encode_id(node_id: object) -> str:
    return repr(node_id)


def _decode_id(text: str) -> object:
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text  # bare string ids round-trip as themselves


# ----------------------------------------------------------------------
# CSV (paired node / edge files, the relational layout)
# ----------------------------------------------------------------------
def save_csv(graph: Graph, node_path: PathLike, edge_path: PathLike) -> None:
    """Write the node relation and edge relation as two CSV files."""
    with open(node_path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["node_id", "x", "y"])
        for node in graph.nodes():
            writer.writerow([_encode_id(node.node_id), node.x, node.y])
    with open(edge_path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["begin", "end", "cost"])
        for edge in graph.edges():
            writer.writerow(
                [_encode_id(edge.source), _encode_id(edge.target), edge.cost]
            )


def load_csv(node_path: PathLike, edge_path: PathLike, name: str = "graph") -> Graph:
    """Read a graph from the paired CSV files written by :func:`save_csv`."""
    graph = Graph(name=name)
    with open(node_path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames != ["node_id", "x", "y"]:
            raise GraphError(
                f"{node_path}: expected header node_id,x,y, "
                f"got {reader.fieldnames}"
            )
        for row in reader:
            graph.add_node(
                _decode_id(row["node_id"]), float(row["x"]), float(row["y"])
            )
    with open(edge_path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames != ["begin", "end", "cost"]:
            raise GraphError(
                f"{edge_path}: expected header begin,end,cost, "
                f"got {reader.fieldnames}"
            )
        for row in reader:
            graph.add_edge(
                _decode_id(row["begin"]),
                _decode_id(row["end"]),
                float(row["cost"]),
            )
    return graph


# ----------------------------------------------------------------------
# JSON (single document)
# ----------------------------------------------------------------------
_FORMAT_VERSION = 1


def graph_to_dict(graph: Graph) -> dict:
    """Plain-dict representation (stable field order, version-tagged)."""
    return {
        "format_version": _FORMAT_VERSION,
        "name": graph.name,
        "nodes": [
            {"id": _encode_id(n.node_id), "x": n.x, "y": n.y}
            for n in graph.nodes()
        ],
        "edges": [
            {
                "begin": _encode_id(e.source),
                "end": _encode_id(e.target),
                "cost": e.cost,
            }
            for e in graph.edges()
        ],
    }


def graph_from_dict(document: dict) -> Graph:
    """Rebuild a graph from :func:`graph_to_dict` output."""
    version = document.get("format_version")
    if version != _FORMAT_VERSION:
        raise GraphError(
            f"unsupported graph document version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    graph = Graph(name=document.get("name", "graph"))
    for node in document["nodes"]:
        graph.add_node(_decode_id(node["id"]), node["x"], node["y"])
    for edge in document["edges"]:
        graph.add_edge(
            _decode_id(edge["begin"]),
            _decode_id(edge["end"]),
            float(edge["cost"]),
        )
    return graph


def save_json(graph: Graph, path: PathLike) -> None:
    """Write the graph as a single JSON document."""
    with open(path, "w") as handle:
        json.dump(graph_to_dict(graph), handle, indent=1)


def load_json(path: PathLike) -> Graph:
    """Read a graph written by :func:`save_json`."""
    with open(path) as handle:
        return graph_from_dict(json.load(handle))
