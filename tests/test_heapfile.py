"""Tests for heap files."""

import pytest

from repro.exceptions import SchemaError, StorageError
from repro.storage.buffer import BufferPool
from repro.storage.heapfile import HeapFile
from repro.storage.iostats import IOStatistics
from repro.storage.schema import ANY, FLOAT, Field, INT, Schema


def make_heap(block_size=64):
    stats = IOStatistics()
    pool = BufferPool(stats, capacity=0)
    schema = Schema("t", [Field("k", ANY, 8), Field("v", FLOAT, 8)])
    return HeapFile("t", schema, pool, stats, block_size=block_size), stats


class TestInsertRead:
    def test_insert_returns_record_id(self):
        heap, _ = make_heap()
        rid = heap.insert({"k": 1, "v": 2.0})
        assert heap.read(rid) == {"k": 1, "v": 2.0}

    def test_insert_validates_schema(self):
        heap, _ = make_heap()
        with pytest.raises(SchemaError):
            heap.insert({"k": 1})

    def test_blocking_factor_from_block_size(self):
        heap, _ = make_heap(block_size=64)
        assert heap.blocking_factor == 4  # 64 / 16

    def test_pages_fill_sequentially(self):
        heap, _ = make_heap(block_size=64)
        for i in range(9):
            heap.insert({"k": i, "v": 0.0})
        assert heap.block_count == 3
        assert heap.tuple_count == 9
        assert heap.blocks_needed() == 3

    def test_read_deleted_raises(self):
        heap, _ = make_heap()
        rid = heap.insert({"k": 1, "v": 2.0})
        heap.delete(rid)
        with pytest.raises(StorageError):
            heap.read(rid)

    def test_single_insert_charges_one_write(self):
        heap, stats = make_heap()
        reads_before = stats.block_reads
        heap.insert({"k": 1, "v": 2.0})
        assert stats.block_writes == 1
        assert stats.block_reads == reads_before


class TestBulkLoad:
    def test_charges_per_page_not_per_tuple(self):
        heap, stats = make_heap(block_size=64)  # bf = 4
        heap.bulk_load({"k": i, "v": 0.0} for i in range(10))
        assert heap.tuple_count == 10
        assert stats.block_writes == 3  # ceil(10 / 4)

    def test_empty_bulk_load_charges_nothing(self):
        heap, stats = make_heap()
        assert heap.bulk_load(iter([])) == 0
        assert stats.block_writes == 0

    def test_appending_to_open_tail_counts_that_page(self):
        heap, stats = make_heap(block_size=64)
        heap.insert({"k": 0, "v": 0.0})  # 1 write, tail open
        stats.reset()
        heap.bulk_load({"k": i, "v": 0.0} for i in range(1, 4))  # fills tail
        assert stats.block_writes == 1


class TestUpdateDelete:
    def test_update_charges_tuple_update(self):
        heap, stats = make_heap()
        rid = heap.insert({"k": 1, "v": 2.0})
        stats.reset()
        heap.update(rid, {"k": 1, "v": 9.0})
        assert stats.tuple_updates == 1
        assert heap.read(rid)["v"] == 9.0

    def test_delete_reduces_count_but_not_blocks(self):
        heap, _ = make_heap(block_size=64)
        rids = [heap.insert({"k": i, "v": 0.0}) for i in range(4)]
        heap.delete(rids[0])
        assert heap.tuple_count == 3
        assert heap.block_count == 1  # tombstones keep their page

    def test_truncate_charges_delete_cost(self):
        heap, stats = make_heap()
        heap.insert({"k": 1, "v": 2.0})
        heap.truncate()
        assert heap.tuple_count == 0
        assert stats.relations_deleted == 1


class TestScan:
    def test_scan_charges_per_allocated_page(self):
        heap, stats = make_heap(block_size=64)
        heap.bulk_load({"k": i, "v": 0.0} for i in range(8))  # 2 pages
        stats.reset()
        assert len(list(heap.scan())) == 8
        assert stats.block_reads == 2

    def test_scan_filter(self):
        heap, _ = make_heap()
        for i in range(6):
            heap.insert({"k": i, "v": float(i)})
        evens = list(heap.scan_filter(lambda t: t["k"] % 2 == 0))
        assert [values["k"] for _rid, values in evens] == [0, 2, 4]

    def test_scan_skips_tombstones(self):
        heap, _ = make_heap()
        rid = heap.insert({"k": 1, "v": 0.0})
        heap.insert({"k": 2, "v": 0.0})
        heap.delete(rid)
        assert [v["k"] for _r, v in heap.scan()] == [2]


class TestBatchUpdate:
    def test_applies_updater_and_counts(self):
        heap, _ = make_heap()
        for i in range(5):
            heap.insert({"k": i, "v": 0.0})

        def bump_even(values):
            if values["k"] % 2 == 0:
                return {"k": values["k"], "v": 1.0}
            return None

        assert heap.batch_update(bump_even) == 3
        values = [v["v"] for _r, v in heap.scan()]
        assert values == [1.0, 0.0, 1.0, 0.0, 1.0]

    def test_charges_block_level_updates(self):
        heap, stats = make_heap(block_size=64)  # bf 4
        heap.bulk_load({"k": i, "v": 0.0} for i in range(8))  # 2 pages
        stats.reset()
        heap.batch_update(lambda t: {"k": t["k"], "v": 1.0})
        # 2 page reads + 2 updates per modified page (2 pages).
        assert stats.block_reads == 2
        assert stats.tuple_updates == 4

    def test_untouched_pages_charge_no_updates(self):
        heap, stats = make_heap(block_size=64)
        heap.bulk_load({"k": i, "v": 0.0} for i in range(8))
        stats.reset()
        heap.batch_update(lambda t: None)
        assert stats.tuple_updates == 0
