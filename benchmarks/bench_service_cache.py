"""Smoke benchmark: cold vs warm RouteService cache on a 30x30 grid.

Two tiers are measured:

* in-memory serving — wall-clock of a workload replayed cold (every
  query computed) and warm (every query a cache hit);
* relational-engine serving — the same repeat query in the paper's
  Table 4A cost units: the cold run pays the full block I/O bill, the
  warm run performs zero block reads/writes.
"""

import time

import pytest

from repro.engine import RelationalGraph
from repro.graphs.grid import make_paper_grid
from repro.service import RouteService

from conftest import run_once


@pytest.fixture(scope="module")
def grid30():
    return make_paper_grid(30, "variance")


def test_bench_service_cache_cold_vs_warm(benchmark, grid30):
    """Wall-clock of 40 queries served cold then warm (in-memory tier)."""
    service = RouteService()
    step = 3
    queries = [
        ((0, 0), (row, column))
        for row in range(0, 30, step)
        for column in range(0, 30, step)
        if (row, column) != (0, 0)
    ][:40]

    def replay():
        started = time.perf_counter()
        service.plan_many(grid30, queries)
        cold_s = time.perf_counter() - started
        started = time.perf_counter()
        service.plan_many(grid30, queries)
        warm_s = time.perf_counter() - started
        return cold_s, warm_s

    cold_s, warm_s = run_once(benchmark, replay)
    snap = service.snapshot()
    benchmark.extra_info["cold_ms"] = cold_s * 1e3
    benchmark.extra_info["warm_ms"] = warm_s * 1e3
    benchmark.extra_info["speedup"] = cold_s / warm_s if warm_s else float("inf")
    benchmark.extra_info["cache_hit_rate"] = snap["cache_hit_rate"]
    print()
    print(f"in-memory tier: cold {cold_s * 1e3:.2f} ms, warm "
          f"{warm_s * 1e3:.2f} ms ({cold_s / max(warm_s, 1e-9):.1f}x), "
          f"hit rate {snap['cache_hit_rate']:.2f}")
    assert warm_s < cold_s, "warm cache pass must beat the cold pass"
    assert snap["cache_hit_rate"] == pytest.approx(0.5)


def test_bench_service_cache_engine_cost_units(benchmark, grid30):
    """Cold vs warm repeat query on the DB-backed tier, in cost units."""
    service = RouteService()
    rgraph = RelationalGraph(grid30)

    def serve_twice():
        cold = service.plan_engine(rgraph, (0, 0), (29, 29), algorithm="dijkstra")
        cold_units = rgraph.stats.cost
        before = rgraph.stats.snapshot()
        warm = service.plan_engine(rgraph, (0, 0), (29, 29), algorithm="dijkstra")
        after = rgraph.stats.snapshot()
        return cold, cold_units, before, after, warm

    cold, cold_units, before, after, warm = run_once(benchmark, serve_twice)
    benchmark.extra_info["cold_cost_units"] = cold_units
    benchmark.extra_info["warm_cost_units"] = after["cost"] - before["cost"]
    print()
    print(f"engine tier: cold {cold_units:.2f} units, warm "
          f"{after['cost'] - before['cost']:.2f} units "
          f"(reads {after['block_reads'] - before['block_reads']}, "
          f"writes {after['block_writes'] - before['block_writes']})")
    assert cold.found and warm.cost == pytest.approx(cold.cost)
    assert cold_units > 0
    assert after == before, "warm engine hit must perform zero block I/O"
