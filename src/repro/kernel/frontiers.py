"""In-memory frontier policies for the generic kernel loop.

The paper's Section 5.3.1 frontier axis has three points: a binary
heap (the in-memory tiers' realisation of the frontierSet), a separate
frontier relation, and a status attribute on the node relation. The
relational two live in :mod:`repro.engine.frontier` and are adapted to
the kernel protocol in :mod:`repro.kernel.backends`; this module holds
the heap policy (Dijkstra and A*, Figures 2-3) and the wave policy
(the Iterative algorithm, Figure 1) over plain dictionaries.

Every policy implements the same protocol the kernel loop drives:

``early_termination``
    class flag — True for best-first (stop when the destination is
    selected), False for wave/label-correcting (run to fixpoint);
``open_node(node_id, path_cost, predecessor)``
    label a node and place it on the frontier (used for the source);
``select()``
    the next selection — one ``{"node_id", "path_cost"}`` label for
    best-first, the whole current wave (a list of labels) for
    Iterative, or None/empty when the frontier is exhausted;
``close(selection)``
    move a best-first selection to the explored set (wave policies
    flip statuses inside :meth:`expand` instead);
``expand(selection, backend)``
    fetch the selection's adjacency rows through the backend and relax
    them; returns the :class:`~repro.kernel.result.IterationRecord`
    field dict for this iteration;
``finalize(result, found, source, destination, backend)``
    write path/cost/found onto the result and release any per-run
    resources.

The counter placement in these policies mirrors the historical
``core.dijkstra`` / ``core.astar`` / ``core.iterative`` loops exactly
(tests/test_kernel.py holds the equivalence proofs), so the fused
fast paths in :mod:`repro.kernel.fastpath` and this generic form
produce identical :class:`~repro.kernel.result.SearchStats`.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Set

from repro.graphs.graph import Graph, NodeId
from repro.kernel.result import RunResult, SearchStats, reconstruct_path


class HeapFrontierPolicy:
    """Binary-heap best-first frontier (Dijkstra and A*).

    Implements the paper's preferred duplicate policy with the standard
    lazy-deletion idiom: label improvements push a fresh heap entry and
    stale entries are skipped on pop, which leaves the expansion
    sequence identical to true decrease-key. Ties on ``g + h`` break
    towards the smaller estimate ``h`` (deepest progress towards the
    goal), then FIFO — with the zero estimator the ordering collapses
    to Dijkstra's ``(g, FIFO)``.

    ``estimator`` None means "no lookahead" (Dijkstra): no estimate
    calls are made at all, matching the historical dijkstra loop.
    """

    early_termination = True

    def __init__(
        self,
        graph: Graph,
        stats: SearchStats,
        estimator,
        destination: NodeId,
    ) -> None:
        self.graph = graph
        self.stats = stats
        self.estimator = estimator
        self.destination = destination
        self.cost: Dict[NodeId, float] = {}
        self.predecessor: Dict[NodeId, NodeId] = {}
        self.explored: Set[NodeId] = set()
        self.in_frontier: Set[NodeId] = set()
        self.heap: list = []
        self.counter = 0

    def open_node(
        self, node_id: NodeId, path_cost: float, predecessor: Optional[NodeId]
    ) -> None:
        h = (
            self.estimator.estimate(self.graph, node_id, self.destination)
            if self.estimator is not None
            else 0.0
        )
        self.cost[node_id] = path_cost
        if predecessor is not None:
            self.predecessor[node_id] = predecessor
        self.in_frontier.add(node_id)
        heapq.heappush(
            self.heap, (path_cost + h, h, self.counter, node_id, path_cost)
        )
        self.stats.frontier_inserts += 1

    def select(self) -> Optional[dict]:
        while self.heap:
            _f, _h, _, u, g_at_push = heapq.heappop(self.heap)
            if u not in self.in_frontier or g_at_push > self.cost.get(u, math.inf):
                continue  # stale lazy-deletion entry
            self.in_frontier.discard(u)
            return {"node_id": u, "path_cost": self.cost[u]}
        return None

    def close(self, selected: dict) -> None:
        u = selected["node_id"]
        if u in self.explored:
            self.stats.nodes_reopened += 1
        self.explored.add(u)
        self.stats.nodes_expanded += 1
        self.stats.observe_frontier(len(self.in_frontier))

    def expand(self, selected: dict, backend) -> dict:
        stats = self.stats
        cost = self.cost
        u = selected["node_id"]
        g = cost[u]
        rows, strategy = backend.neighbors([selected])
        updates = 0
        for row in rows:
            stats.edges_relaxed += 1
            v = row["end"]
            candidate = g + row["cost"]
            if candidate < cost.get(v, math.inf):
                cost[v] = candidate
                self.predecessor[v] = u
                stats.nodes_updated += 1
                updates += 1
                h_v = (
                    self.estimator.estimate(self.graph, v, self.destination)
                    if self.estimator is not None
                    else 0.0
                )
                self.counter += 1
                heapq.heappush(
                    self.heap, (candidate + h_v, h_v, self.counter, v, candidate)
                )
                if v not in self.in_frontier:
                    self.in_frontier.add(v)
                    stats.frontier_inserts += 1
        return {
            "expanded_nodes": 1,
            "join_result_tuples": len(rows),
            "join_strategy": strategy,
            "updates_applied": updates,
            "frontier_size_after": len(self.in_frontier),
            "labels": ((u, g),),
        }

    def finalize(
        self,
        result: RunResult,
        found: Optional[dict],
        source: NodeId,
        destination: NodeId,
        backend,
    ) -> None:
        if found is None:
            return
        path = reconstruct_path(self.predecessor, source, destination)
        assert path is not None, "destination selected without a path label"
        result.path = path
        result.cost = self.cost[destination]
        result.found = True


class WaveFrontierPolicy:
    """Wave-synchronous label-correcting frontier (Iterative, Figure 1).

    One selection is one whole wave; the kernel loop never closes or
    early-terminates it — the search runs until a wave produces no
    improvements, exactly like the historical ``iterative_search``.
    Within a wave, labels propagate sequentially (a node later in the
    wave expands from a cost an earlier wave-member just improved),
    which is the in-memory loop's historical behaviour; the relational
    wave applies the whole wave's improvements as one batch REPLACE.
    """

    early_termination = False

    def __init__(self, graph: Graph, stats: SearchStats) -> None:
        self.graph = graph
        self.stats = stats
        self.cost: Dict[NodeId, float] = {}
        self.predecessor: Dict[NodeId, NodeId] = {}
        self.wave: List[NodeId] = []
        self.ever_expanded: Set[NodeId] = set()

    def open_node(
        self, node_id: NodeId, path_cost: float, predecessor: Optional[NodeId]
    ) -> None:
        self.cost[node_id] = path_cost
        if predecessor is not None:
            self.predecessor[node_id] = predecessor
        self.wave = [node_id]

    def select(self) -> Optional[List[dict]]:
        if not self.wave:
            return None
        return [{"node_id": u, "path_cost": self.cost[u]} for u in self.wave]

    def close(self, selected) -> None:  # pragma: no cover - never called
        raise AssertionError("wave frontiers are not closed per selection")

    def expand(self, selected: List[dict], backend) -> dict:
        stats = self.stats
        cost = self.cost
        stats.observe_frontier(len(selected))
        next_wave: List[NodeId] = []
        next_in_frontier: Set[NodeId] = set()
        updates = 0
        produced = 0
        for entry in selected:
            u = entry["node_id"]
            stats.nodes_expanded += 1
            if u in self.ever_expanded:
                stats.nodes_reopened += 1
            self.ever_expanded.add(u)
            # Sequential in-wave propagation: expand from the *current*
            # label, which an earlier member of this wave may have just
            # improved — not the wave-start snapshot in ``entry``.
            base = cost[u]
            rows, _ = backend.neighbors([{"node_id": u, "path_cost": base}])
            for row in rows:
                stats.edges_relaxed += 1
                produced += 1
                v = row["end"]
                candidate = base + row["cost"]
                if candidate < cost.get(v, math.inf):
                    cost[v] = candidate
                    self.predecessor[v] = u
                    stats.nodes_updated += 1
                    updates += 1
                    if v not in next_in_frontier:
                        next_wave.append(v)
                        next_in_frontier.add(v)
                        stats.frontier_inserts += 1
        self.wave = next_wave
        return {
            "expanded_nodes": len(selected),
            "join_result_tuples": produced,
            "join_strategy": "in-memory",
            "updates_applied": updates,
            "frontier_size_after": len(next_wave),
            "labels": tuple(
                (entry["node_id"], entry["path_cost"]) for entry in selected
            ),
        }

    def finalize(
        self,
        result: RunResult,
        found: Optional[dict],
        source: NodeId,
        destination: NodeId,
        backend,
    ) -> None:
        path = reconstruct_path(self.predecessor, source, destination)
        if path is not None and destination in self.cost:
            result.path = path
            result.cost = self.cost[destination]
            result.found = True
