"""Tests for the four join strategies and the optimizer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import QueryError
from repro.query.joins import (
    ALL_STRATEGIES,
    HashJoin,
    JoinCostInputs,
    NestedLoopJoin,
    PrimaryKeyJoin,
    SortMergeJoin,
    make_inputs,
)
from repro.query.optimizer import (
    applicable_strategies,
    choose_strategy,
    execute_join,
)
from repro.storage.database import Database
from repro.storage.iostats import IOStatistics
from repro.storage.schema import ANY, FLOAT, Field, Schema


def make_edge_relation(edges, with_hash=True):
    db = Database()
    schema = Schema(
        "s",
        [Field("begin", ANY, 12), Field("end", ANY, 12), Field("cost", FLOAT, 8)],
    )
    relation = db.create_relation(schema)
    relation.bulk_load(
        {"begin": u, "end": v, "cost": c} for u, v, c in edges
    )
    if with_hash:
        relation.create_hash_index("begin")
    return relation, db.stats


EDGES = [(u, (u + d) % 8, float(d)) for u in range(8) for d in (1, 2)]
OUTER = [{"node_id": 2, "g": 0.0}, {"node_id": 5, "g": 1.0}]


def expected_join_pairs(outer, edges):
    result = []
    for row in outer:
        for u, v, c in edges:
            if u == row["node_id"]:
                result.append((row["node_id"], v, c))
    return sorted(result)


def run_strategy(strategy_cls, with_hash=True):
    relation, stats = make_edge_relation(EDGES, with_hash=with_hash)
    inputs = make_inputs(OUTER, 256, relation, 4, 86)
    rows = strategy_cls().execute(OUTER, "node_id", relation, "begin", inputs, stats)
    return rows, stats


class TestStrategyEquivalence:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_all_strategies_produce_identical_results(self, strategy):
        rows, _stats = run_strategy(strategy)
        pairs = sorted((r["node_id"], r["end"], r["cost"]) for r in rows)
        assert pairs == expected_join_pairs(OUTER, EDGES)

    def test_merged_tuples_contain_both_sides(self):
        rows, _ = run_strategy(HashJoin)
        row = rows[0]
        assert {"node_id", "g", "begin", "end", "cost"} <= set(row)

    def test_name_clash_prefixed(self):
        relation, stats = make_edge_relation([(1, 2, 1.0)])
        outer = [{"begin": 1, "mine": True}]  # clashes with S.begin
        inputs = make_inputs(outer, 256, relation, 1, 86)
        rows = HashJoin().execute(outer, "begin", relation, "begin", inputs, stats)
        assert rows[0]["begin"] == 1
        assert rows[0]["inner.begin"] == 1

    def test_primary_key_requires_hash_index(self):
        relation, stats = make_edge_relation(EDGES, with_hash=False)
        inputs = make_inputs(OUTER, 256, relation, 4, 86)
        with pytest.raises(QueryError):
            PrimaryKeyJoin().execute(
                OUTER, "node_id", relation, "begin", inputs, stats
            )

    def test_empty_outer(self):
        relation, stats = make_edge_relation(EDGES)
        inputs = make_inputs([], 256, relation, 0, 86)
        for strategy in (NestedLoopJoin, HashJoin, SortMergeJoin):
            assert strategy().execute([], "node_id", relation, "begin", inputs, stats) == []


class TestCosts:
    def test_nested_loop_cost_formula(self):
        stats = IOStatistics()
        inputs = JoinCostInputs(2, 10, 1, 300)
        expected = 2 * 0.035 + 2 * 10 * 0.035 + 1 * 0.05
        assert NestedLoopJoin.estimated_cost(inputs, stats) == pytest.approx(expected)

    def test_hash_cost_formula(self):
        stats = IOStatistics()
        inputs = JoinCostInputs(2, 10, 1, 300)
        assert HashJoin.estimated_cost(inputs, stats) == pytest.approx(
            12 * 0.035 + 0.05
        )

    def test_primary_key_cost_scales_with_outer_tuples(self):
        stats = IOStatistics()
        small = JoinCostInputs(1, 10, 1, 1)
        large = JoinCostInputs(1, 10, 1, 100)
        assert PrimaryKeyJoin.estimated_cost(
            small, stats
        ) < PrimaryKeyJoin.estimated_cost(large, stats)

    def test_negative_blocks_rejected(self):
        with pytest.raises(QueryError):
            JoinCostInputs(-1, 0, 0, 0)


class TestOptimizer:
    def test_single_tuple_outer_prefers_primary_key(self):
        stats = IOStatistics()
        inputs = JoinCostInputs(1, 28, 1, 1)
        plan = choose_strategy(inputs, stats)
        assert plan.strategy_name == "primary-key"

    def test_large_outer_avoids_primary_key(self):
        stats = IOStatistics()
        inputs = JoinCostInputs(4, 28, 5, 1000)
        plan = choose_strategy(inputs, stats)
        assert plan.strategy_name == "hash"

    def test_alternatives_recorded(self):
        stats = IOStatistics()
        plan = choose_strategy(JoinCostInputs(1, 5, 1, 1), stats)
        assert set(plan.alternatives) == {
            "nested-loop", "hash", "sort-merge", "primary-key",
        }
        assert plan.estimated_cost == min(plan.alternatives.values())

    def test_applicable_strategies_without_hash_index(self):
        relation, _stats = make_edge_relation(EDGES, with_hash=False)
        names = {s.name for s in applicable_strategies(relation, "begin")}
        assert "primary-key" not in names

    def test_execute_join_end_to_end(self):
        relation, stats = make_edge_relation(EDGES)
        rows, plan = execute_join(
            OUTER, "node_id", 256, relation, "begin", 4, 86, stats
        )
        pairs = sorted((r["node_id"], r["end"], r["cost"]) for r in rows)
        assert pairs == expected_join_pairs(OUTER, EDGES)
        assert plan.strategy_name in plan.alternatives

    def test_forced_strategy(self):
        relation, stats = make_edge_relation(EDGES)
        rows, plan = execute_join(
            OUTER, "node_id", 256, relation, "begin", 4, 86, stats,
            forced_strategy=SortMergeJoin,
        )
        assert plan.strategy_name == "sort-merge"
        assert len(rows) == 4

    def test_no_candidates_rejected(self):
        stats = IOStatistics()
        with pytest.raises(ValueError):
            choose_strategy(JoinCostInputs(1, 1, 1, 1), stats, candidates=())


@settings(max_examples=30, deadline=None)
@given(
    edges=st.lists(
        st.tuples(
            st.integers(0, 6), st.integers(0, 6),
            st.floats(0.1, 9.9, allow_nan=False),
        ),
        max_size=25,
    ),
    outer_keys=st.lists(st.integers(0, 6), max_size=5),
)
def test_property_strategies_agree(edges, outer_keys):
    """All four strategies return the same multiset on random inputs."""
    relation, stats = make_edge_relation(edges)
    outer = [{"node_id": k, "tag": i} for i, k in enumerate(outer_keys)]
    inputs = make_inputs(outer, 256, relation, max(1, len(edges)), 86)
    results = []
    for strategy in ALL_STRATEGIES:
        rows = strategy().execute(outer, "node_id", relation, "begin", inputs, stats)
        results.append(
            sorted((r["tag"], r["end"], r["cost"]) for r in rows)
        )
    assert all(result == results[0] for result in results)
