"""Tests for single-pair Dijkstra — Figure 2."""

import pytest

from repro.exceptions import NodeNotFoundError
from repro.core.dijkstra import dijkstra_search, dijkstra_sssp
from repro.graphs.grid import make_grid, make_paper_grid


class TestCorrectness:
    def test_finds_shortest_path(self, tiny_graph):
        result = dijkstra_search(tiny_graph, "a", "e")
        assert result.found
        assert result.path == ["a", "b", "c", "d", "e"]
        assert result.cost == pytest.approx(4.0)

    def test_source_equals_destination(self, tiny_graph):
        result = dijkstra_search(tiny_graph, "a", "a")
        assert result.found
        assert result.path == ["a"]
        assert result.iterations == 0

    def test_unreachable(self, disconnected_graph):
        result = dijkstra_search(disconnected_graph, "a", "z")
        assert not result.found

    def test_missing_nodes_raise(self, tiny_graph):
        with pytest.raises(NodeNotFoundError):
            dijkstra_search(tiny_graph, "q", "e")

    def test_respects_direction(self, tiny_graph):
        """No path backwards along directed edges."""
        result = dijkstra_search(tiny_graph, "e", "a")
        assert not result.found


class TestTermination:
    def test_terminates_at_destination(self, grid10_uniform):
        """Unlike Iterative, Dijkstra stops early on close destinations."""
        near = dijkstra_search(grid10_uniform, (0, 0), (0, 1))
        assert near.iterations < grid10_uniform.node_count / 4

    def test_diagonal_expands_nearly_all_nodes(self):
        """Table 5: diagonal queries cost ~n-1 iterations."""
        graph = make_paper_grid(10, "variance")
        result = dijkstra_search(graph, (0, 0), (9, 9))
        assert result.iterations == graph.node_count - 1

    def test_iterations_grow_with_path_length(self, grid10_variance):
        horizontal = dijkstra_search(grid10_variance, (0, 0), (0, 9))
        diagonal = dijkstra_search(grid10_variance, (0, 0), (9, 9))
        assert horizontal.iterations < diagonal.iterations


class TestStats:
    def test_expanded_equals_iterations(self, grid10_uniform):
        result = dijkstra_search(grid10_uniform, (0, 0), (5, 5))
        assert result.stats.nodes_expanded == result.iterations

    def test_no_reopening_with_nonnegative_costs(self, grid10_variance):
        result = dijkstra_search(grid10_variance, (0, 0), (9, 9))
        assert result.stats.nodes_reopened == 0

    def test_algorithm_label(self, tiny_graph):
        assert dijkstra_search(tiny_graph, "a", "e").algorithm == "dijkstra"


class TestSSSP:
    def test_distances_match_single_pair(self, tiny_graph):
        distances = dijkstra_sssp(tiny_graph, "a")
        for destination in "bcde":
            single = dijkstra_search(tiny_graph, "a", destination)
            assert distances[destination] == pytest.approx(single.cost)

    def test_cutoff_bounds_radius(self):
        graph = make_grid(8)
        near = dijkstra_sssp(graph, (0, 0), cutoff=3.0)
        assert all(distance <= 3.0 for distance in near.values())
        assert (0, 3) in near
        assert (7, 7) not in near

    def test_missing_source_raises(self, tiny_graph):
        with pytest.raises(NodeNotFoundError):
            dijkstra_sssp(tiny_graph, "nope")
