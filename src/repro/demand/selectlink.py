"""Select-link analysis: which OD pairs traverse a given link, and
how much volume they put on it.

A skim answers "how much does each pair cost"; select-link answers the
planner's follow-up — "who is on this road". Given a set of directed
links and a demand matrix, the analysis inverts the route set: for
each link, the OD pairs whose shortest path crosses it and the demand
volume they contribute. The service layer answers the same question
from two sources through this one code path:

* **fresh path trees** — a :class:`~repro.demand.skim.SkimMatrix`
  computed with ``retain_paths=True`` streams ``(o, d, edges)`` routes;
* **cached routes** — :meth:`RouteCache.routes_crossing` reads the
  cache's inverted edge→route index (filtered to the current
  fingerprint) and yields the same shape.

Both feed :func:`link_flows`, so the select-link result is exactly the
dual of whichever route set priced the pairs. The exactness harness
audits it the brute-force way: re-deriving per-pair membership from
independent dict-tier point Dijkstras and comparing pair sets and
volume sums cell-for-cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.graphs.graph import NodeId

Edge = Tuple[NodeId, NodeId]
ODPair = Tuple[NodeId, NodeId]


@dataclass
class LinkFlow:
    """One link's share of the OD route set.

    ``pairs`` maps each OD pair whose route crosses the link to the
    demand volume it contributes (1.0 per pair when no demand matrix
    is supplied — a pure membership census).
    """

    link: Edge
    pairs: Dict[ODPair, float] = field(default_factory=dict)

    @property
    def volume(self) -> float:
        """Total demand crossing the link."""
        return sum(self.pairs.values())

    @property
    def pair_count(self) -> int:
        return len(self.pairs)


@dataclass
class SelectLinkResult:
    """Select-link flows for a link set at one graph fingerprint."""

    fingerprint: Tuple[int, int]
    source: str  # "skim" or "cache" — which route set answered
    flows: Dict[Edge, LinkFlow]
    #: Routes examined to build the flows.
    routes_seen: int = 0

    def flow(self, link: Edge) -> LinkFlow:
        try:
            return self.flows[link]
        except KeyError:
            raise KeyError(f"link {link!r} was not part of this analysis") from None

    @property
    def links(self) -> Tuple[Edge, ...]:
        return tuple(self.flows)

    @property
    def total_volume(self) -> float:
        return sum(f.volume for f in self.flows.values())

    def summary(self) -> Dict[str, float]:
        return {
            "links": float(len(self.flows)),
            "routes_seen": float(self.routes_seen),
            "total_volume": self.total_volume,
        }


def link_flows(
    routes: Iterable[Tuple[NodeId, NodeId, Tuple[Edge, ...]]],
    links: Iterable[Edge],
    demand: Optional[Mapping[ODPair, float]] = None,
) -> Dict[Edge, LinkFlow]:
    """Invert a route stream onto a link set.

    ``routes`` yields ``(origin, destination, edges)`` triples — the
    shape both :meth:`SkimMatrix.routes` and the cache's
    ``routes_crossing`` produce. ``demand`` maps OD pairs to volumes;
    pairs absent from it contribute 1.0 (membership census). Every
    requested link gets a :class:`LinkFlow`, empty when nothing
    crosses it — links are never silently dropped.
    """
    wanted = {tuple(link): LinkFlow(link=tuple(link)) for link in links}
    for origin, destination, edges in routes:
        weight = 1.0 if demand is None else demand.get((origin, destination), 1.0)
        for edge in edges:
            flow = wanted.get(edge)
            if flow is not None:
                flow.pairs[(origin, destination)] = weight
    return wanted


def select_link(
    matrix,
    links: Iterable[Edge],
    demand: Optional[Mapping[ODPair, float]] = None,
) -> SelectLinkResult:
    """Select-link analysis over a path-retaining skim matrix.

    ``matrix`` must have been skimmed with ``retain_paths=True``. The
    result is priced at the matrix's fingerprint: the pair sets and
    volumes describe shortest paths under exactly that cost state.
    """
    link_list: List[Edge] = [tuple(link) for link in links]
    routes_seen = 0

    def counted():
        nonlocal routes_seen
        for triple in matrix.routes():
            routes_seen += 1
            yield triple

    flows = link_flows(counted(), link_list, demand)
    return SelectLinkResult(
        fingerprint=matrix.fingerprint,
        source="skim",
        flows=flows,
        routes_seen=routes_seen,
    )
