"""Buffer pool: the boundary where block I/O gets charged.

Every page access by a heap file or index goes through one
:class:`BufferPool`. A hit is free; a miss charges ``t_read`` and may
evict the least-recently-used page (charging ``t_write`` if dirty).

The paper's cost model assumes INGRES re-reads relations on every scan
(its per-iteration terms are full ``B_r`` / ``B_s`` reads), which
corresponds to a pool too small to retain the working set — the
realistic setting for 1993 hardware. The engine therefore defaults to
``capacity=0`` (pass-through: every access is a miss and dirty pages
write straight through), while larger capacities let the benchmarks
explore how modern buffering would change the paper's conclusions.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.storage.iostats import IOStatistics
from repro.storage.page import Page

PageKey = Tuple[str, int]  # (file name, page number)


class BufferPool:
    """LRU page cache with miss/eviction accounting.

    ``capacity`` is the number of pages held; 0 disables caching
    entirely (each access charges a read, each mutation a write-through
    — matching the algebraic cost model's assumptions exactly).
    """

    def __init__(self, stats: IOStatistics, capacity: int = 0) -> None:
        if capacity < 0:
            raise ValueError("buffer capacity must be non-negative")
        self.stats = stats
        self.capacity = capacity
        self._frames: "OrderedDict[PageKey, Page]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def access(self, file_name: str, page: Page, for_write: bool = False) -> Page:
        """Route one page access through the pool, charging as needed.

        The storage layer owns the actual :class:`Page` objects (there
        is no real disk); the pool's job is purely to decide what each
        access costs. ``for_write`` marks the page dirty.
        """
        key = (file_name, page.page_no)
        if self.capacity == 0:
            # Pass-through mode: every access is a miss; mutations are
            # written through immediately.
            self.misses += 1
            self.stats.charge_read()
            if for_write:
                self.stats.charge_write()
            return page

        if key in self._frames:
            self.hits += 1
            self._frames.move_to_end(key)
        else:
            self.misses += 1
            self.stats.charge_read()
            self._frames[key] = page
            if len(self._frames) > self.capacity:
                self._evict_one()
        if for_write:
            page.dirty = True
        return page

    def _evict_one(self) -> None:
        _key, victim = self._frames.popitem(last=False)
        self.evictions += 1
        if victim.dirty:
            self.stats.charge_write()
            victim.dirty = False

    def flush(self) -> int:
        """Write out all dirty cached pages; return how many were dirty."""
        flushed = 0
        for page in self._frames.values():
            if page.dirty:
                self.stats.charge_write()
                page.dirty = False
                flushed += 1
        return flushed

    def invalidate(self, file_name: str) -> None:
        """Drop (without writing) all cached pages of one file.

        Used when a relation is destroyed; its pages are gone, so
        flushing them would charge phantom writes.
        """
        doomed = [key for key in self._frames if key[0] == file_name]
        for key in doomed:
            del self._frames[key]

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"BufferPool(capacity={self.capacity}, hits={self.hits}, "
            f"misses={self.misses}, evictions={self.evictions})"
        )
