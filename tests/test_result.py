"""Tests for PathResult, SearchStats and path reconstruction."""

import pytest

from repro.exceptions import PathNotFoundError
from repro.core.result import PathResult, SearchStats, reconstruct_path


class TestSearchStats:
    def test_observe_frontier_tracks_peak(self):
        stats = SearchStats()
        for size in (3, 7, 2):
            stats.observe_frontier(size)
        assert stats.max_frontier_size == 7

    def test_merged_with_sums_counters(self):
        a = SearchStats(iterations=2, nodes_expanded=2, max_frontier_size=5)
        b = SearchStats(iterations=3, nodes_expanded=3, max_frontier_size=4)
        merged = a.merged_with(b)
        assert merged.iterations == 5
        assert merged.nodes_expanded == 5
        assert merged.max_frontier_size == 5


class TestPathResult:
    def test_defaults_are_not_found(self):
        result = PathResult(source="a", destination="b")
        assert not result.found
        assert result.cost == float("inf")
        assert result.path_length == 0

    def test_path_length_counts_edges(self):
        result = PathResult(
            source="a", destination="c", path=["a", "b", "c"], found=True
        )
        assert result.path_length == 2

    def test_edge_sequence(self):
        result = PathResult(
            source="a", destination="c", path=["a", "b", "c"], found=True
        )
        assert result.edge_sequence() == [("a", "b"), ("b", "c")]

    def test_raise_if_not_found(self):
        result = PathResult(source="a", destination="b")
        with pytest.raises(PathNotFoundError):
            result.raise_if_not_found()

    def test_raise_if_not_found_passthrough(self):
        result = PathResult(source="a", destination="b", path=["a", "b"], found=True)
        assert result.raise_if_not_found() is result

    def test_iterations_shortcut(self):
        result = PathResult(
            source="a", destination="b", stats=SearchStats(iterations=42)
        )
        assert result.iterations == 42


class TestReconstructPath:
    def test_simple_chain(self):
        predecessor = {"b": "a", "c": "b"}
        assert reconstruct_path(predecessor, "a", "c") == ["a", "b", "c"]

    def test_source_equals_destination(self):
        assert reconstruct_path({}, "a", "a") == ["a"]

    def test_unreachable_destination(self):
        assert reconstruct_path({"b": "a"}, "a", "z") is None

    def test_cycle_detected(self):
        predecessor = {"b": "c", "c": "b"}
        with pytest.raises(ValueError):
            reconstruct_path(predecessor, "a", "b")

    def test_walk_that_never_reaches_source(self):
        # Chain ends at a node that thinks its predecessor is itself's
        # ancestor outside the map -> cycle/overflow must raise.
        predecessor = {"c": "b", "b": "c"}
        with pytest.raises(ValueError):
            reconstruct_path(predecessor, "a", "c")
