"""Dijkstra's single-pair algorithm — Figure 2 of the paper.

The representative of the *partial transitive closure* class: one
minimum-cost frontier node is selected and expanded per iteration, and
the search terminates as soon as the destination is selected (Lemma 2).
Unlike the Iterative algorithm it "can terminate quickly if the
shortest path from s to d has fewer edges"; unlike A* it has no
lookahead and expands uniformly in all directions, which is why its
iteration count approaches |N| - 1 on diagonal grid queries (Table 5).

An *iteration* is one select-and-remove on the frontierSet whose node
actually gets expanded; the final selection of the destination itself
terminates the loop and is not counted, matching the paper's counts
(899 iterations on a 900-node grid).

This module is a thin configuration of :mod:`repro.kernel`: the heap
frontier policy with no estimator, on the in-memory backend.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.graphs.graph import Graph, NodeId
from repro.core.result import PathResult
from repro.kernel import fastpath, search


def dijkstra_search(
    graph: Graph,
    source: NodeId,
    destination: NodeId,
) -> PathResult:
    """Find the shortest path from ``source`` to ``destination``.

    Implements Figure 2 with duplicate *avoidance* (the paper's
    preferred frontier policy): a node enters the frontier only once;
    label improvements for nodes already in the frontier are decrease-
    key operations, realised with the standard lazy-deletion binary-
    heap idiom (stale heap entries are skipped on pop, which leaves
    the expansion sequence identical to true decrease-key).

    Requires non-negative edge costs (enforced at graph construction).
    """
    return search(graph, source, destination, algorithm="dijkstra")


def dijkstra_sssp(
    graph: Graph, source: NodeId, cutoff: Optional[float] = None
) -> Dict[NodeId, float]:
    """Single-source shortest-path distances (no early termination).

    The partial-transitive-closure primitive the single-pair algorithm
    specialises; used by tests, the landmark estimator and the graph
    analysis helpers. ``cutoff`` optionally bounds the explored radius.
    """
    return fastpath.sssp(graph, source, cutoff)
