"""Batch OD workloads: skim exactness, select-link, assignment.

The demand subsystem's contract is *exactness by construction*: every
skim cell is the same float a single-pair CSR Dijkstra returns, every
retained tree path is the route the point query returns, every
select-link flow is derivable from per-pair path membership, and every
assignment iteration conserves demand. These tests hold that contract
on the paper grids, on random sparse digraphs with genuinely
unreachable pairs, and across traffic epochs.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.demand import (
    BPRParams,
    SkimMatrix,
    assign,
    link_flows,
    select_link,
    skim,
)
from repro.exceptions import NodeNotFoundError
from repro.graphs.graph import Graph
from repro.graphs.grid import make_paper_grid
from repro.kernel import fastpath
from repro.service import RouteService
from repro.traffic.feed import TrafficFeed

pytestmark = pytest.mark.demand


def random_sparse_digraph(nodes: int, edges: int, seed: int) -> Graph:
    """A directed graph sparse enough to leave some pairs unreachable."""
    rng = random.Random(seed)
    graph = Graph(name=f"sparse-{seed}")
    for i in range(nodes):
        graph.add_node(i, rng.uniform(0, 10), rng.uniform(0, 10))
    added = 0
    while added < edges:
        u, v = rng.randrange(nodes), rng.randrange(nodes)
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v, rng.uniform(1.0, 9.0))
        added += 1
    return graph


def apply_random_epoch(feed: TrafficFeed, seed: int, count: int = 6) -> None:
    rng = random.Random(seed)
    edges = sorted((e.source, e.target) for e in feed.graph.edges())
    sample = rng.sample(edges, min(count, len(edges)))
    feed.apply(
        [
            (u, v, feed.graph.edge_cost(u, v) * rng.uniform(0.6, 1.7))
            for u, v in sample
        ]
    )


# ---------------------------------------------------------------------------
# skim: cell exactness
# ---------------------------------------------------------------------------
class TestSkimExactness:
    def test_grid_cells_match_pointwise_csr_across_epochs(self):
        """Every cell == ``uniform_cost`` for the pair, at 4 cost states.

        The satellite contract: cell-exactness vs per-pair CSR Dijkstra
        on a grid, re-checked across >= 3 traffic epochs.
        """
        graph = make_paper_grid(8, "variance", seed=21)
        feed = TrafficFeed(graph)
        rng = random.Random(21)
        nodes = sorted(n.node_id for n in graph.nodes())
        origins = rng.sample(nodes, 5)
        destinations = rng.sample(nodes, 5)
        for epoch in range(4):  # base state + 3 epochs
            if epoch:
                apply_random_epoch(feed, seed=100 + epoch)
            matrix = skim(graph, origins, destinations)
            assert matrix.fingerprint == graph.fingerprint
            for o in origins:
                for d in destinations:
                    run = fastpath.uniform_cost(graph, o, d)
                    expected = run.cost if run.found else math.inf
                    assert matrix.cost(o, d) == expected

    def test_random_sparse_digraph_across_epochs(self):
        """Same exactness on a random digraph, dict reference this time."""
        graph = random_sparse_digraph(nodes=40, edges=90, seed=7)
        feed = TrafficFeed(graph)
        origins = list(range(0, 40, 5))
        for epoch in range(4):
            if epoch:
                apply_random_epoch(feed, seed=200 + epoch)
            matrix = skim(graph, origins)  # destinations default: all
            for i, o in enumerate(origins):
                ref = fastpath.sssp_dict(graph, o)
                for j, d in enumerate(matrix.destinations):
                    assert matrix.costs[i][j] == ref.get(d, math.inf)

    def test_csr_and_dict_tiers_agree_bitwise(self):
        graph = random_sparse_digraph(nodes=30, edges=70, seed=13)
        origins = [0, 3, 9, 15]
        a = skim(graph, origins, tier="csr")
        b = skim(graph, origins, tier="dict")
        assert a.costs == b.costs
        assert a.tier == "csr" and b.tier == "dict"

    def test_unreachable_pairs_reported_as_inf_never_dropped(self):
        """The matrix is dense: every requested pair has a cell."""
        graph = random_sparse_digraph(nodes=25, edges=30, seed=3)
        origins = list(range(25))
        matrix = skim(graph, origins)
        rows, cols = matrix.shape
        assert rows == 25 and cols == 25
        unreachable = matrix.unreachable_pairs()
        assert unreachable, "workload should contain unreachable pairs"
        for o, d in unreachable:
            assert matrix.cost(o, d) == math.inf
            run = fastpath.uniform_cost(graph, o, d)
            assert not run.found
        finite = rows * cols - len(unreachable)
        assert finite > 0

    def test_duplicate_origins_share_one_sssp(self, tiny_graph):
        matrix = skim(tiny_graph, ["a", "a", "b", "a"], ["e", "d"])
        assert matrix.sssp_runs == 2  # a and b, computed once each
        assert matrix.shape == (4, 2)
        assert matrix.cost("a", "e") == 4.0
        assert matrix.costs[0] == matrix.costs[1] == matrix.costs[3]

    def test_unknown_zone_raises_at_call(self, tiny_graph):
        with pytest.raises(NodeNotFoundError):
            skim(tiny_graph, ["a", "missing"])
        with pytest.raises(NodeNotFoundError):
            skim(tiny_graph, ["a"], ["e", "missing"])
        with pytest.raises(ValueError):
            skim(tiny_graph, ["a"], tier="gpu")

    def test_cost_accessors_validate_membership(self, tiny_graph):
        matrix = skim(tiny_graph, ["a"], ["e"])
        with pytest.raises(NodeNotFoundError):
            matrix.cost("b", "e")
        with pytest.raises(NodeNotFoundError):
            matrix.cost("a", "b")
        assert matrix.row("a") == {"e": 4.0}


# ---------------------------------------------------------------------------
# skim: path retention
# ---------------------------------------------------------------------------
class TestSkimPaths:
    def test_tree_paths_are_the_point_query_routes(self):
        graph = make_paper_grid(7, "variance", seed=4)
        rng = random.Random(4)
        nodes = sorted(n.node_id for n in graph.nodes())
        origins = rng.sample(nodes, 4)
        destinations = rng.sample(nodes, 4)
        matrix = skim(graph, origins, destinations, retain_paths=True)
        for o in origins:
            for d in destinations:
                path = matrix.path(o, d)
                run = fastpath.uniform_cost(graph, o, d)
                assert path == run.path
                if o != d:
                    assert graph.path_cost(path) == matrix.cost(o, d)

    def test_path_without_retention_raises(self, tiny_graph):
        matrix = skim(tiny_graph, ["a"], ["e"])
        with pytest.raises(ValueError):
            matrix.path("a", "e")
        with pytest.raises(ValueError):
            list(matrix.routes())

    def test_unreachable_and_self_pairs(self, disconnected_graph):
        matrix = skim(
            disconnected_graph, ["a", "z"], ["a", "b", "z"],
            retain_paths=True,
        )
        assert matrix.path("a", "z") is None
        assert matrix.path("a", "a") == ["a"]
        assert matrix.cost("z", "b") == math.inf
        routes = list(matrix.routes())
        # Only reachable, non-self pairs yield route edges.
        assert {(o, d) for o, d, _ in routes} == {("a", "b")}
        assert routes[0][2] == (("a", "b"),)


# ---------------------------------------------------------------------------
# select-link
# ---------------------------------------------------------------------------
class TestSelectLink:
    def test_flows_match_path_membership(self, tiny_graph):
        matrix = skim(
            tiny_graph, ["a", "b"], ["d", "e"], retain_paths=True
        )
        demand = {
            ("a", "d"): 10.0,
            ("a", "e"): 20.0,
            ("b", "d"): 5.0,
            ("b", "e"): 2.0,
        }
        result = select_link(
            matrix, [("c", "d"), ("d", "e"), ("a", "c")], demand
        )
        # Every shortest path here runs a-b-c-d(-e) / b-c-d(-e).
        assert result.flow(("c", "d")).pairs == demand
        assert result.flow(("d", "e")).pairs == {
            ("a", "e"): 20.0,
            ("b", "e"): 2.0,
        }
        # a->c directly is never on a shortest path (a-b-c is cheaper):
        # the link is reported, with an empty table — never dropped.
        assert result.flow(("a", "c")).pairs == {}
        assert result.flow(("a", "c")).volume == 0.0
        assert result.flow(("c", "d")).volume == 37.0
        assert result.fingerprint == tiny_graph.fingerprint
        assert result.source == "skim"

    def test_missing_demand_defaults_to_unit_census(self, tiny_graph):
        matrix = skim(tiny_graph, ["a"], ["e"], retain_paths=True)
        result = select_link(matrix, [("d", "e")])
        assert result.flow(("d", "e")).pairs == {("a", "e"): 1.0}

    def test_unknown_link_lookup_raises(self, tiny_graph):
        matrix = skim(tiny_graph, ["a"], ["e"], retain_paths=True)
        result = select_link(matrix, [("d", "e")])
        with pytest.raises(KeyError):
            result.flow(("a", "b"))

    def test_link_flows_accepts_any_route_stream(self):
        routes = [
            ("o1", "d1", (("x", "y"), ("y", "z"))),
            ("o2", "d2", (("x", "y"),)),
        ]
        flows = link_flows(routes, [("x", "y"), ("q", "r")], {("o1", "d1"): 3.0})
        assert flows[("x", "y")].pairs == {("o1", "d1"): 3.0, ("o2", "d2"): 1.0}
        assert flows[("q", "r")].pairs == {}


# ---------------------------------------------------------------------------
# service integration
# ---------------------------------------------------------------------------
class TestServiceSkim:
    def make_grid_service(self):
        graph = make_paper_grid(6, "variance", seed=9)
        service = RouteService()
        feed = TrafficFeed(graph)
        feed.subscribe(service)
        return graph, service, feed

    def test_skim_reuse_and_epoch_drop(self):
        graph, service, feed = self.make_grid_service()
        rng = random.Random(9)
        nodes = sorted(n.node_id for n in graph.nodes())
        origins = rng.sample(nodes, 4)
        destinations = rng.sample(nodes, 4)
        first = service.skim(graph, origins, destinations, retain_paths=True)
        # A path-retaining matrix serves the cost-only ask as a hit.
        assert service.skim(graph, origins, destinations) is first
        assert service.skim_hits == 1
        assert service.skims_computed == 1
        apply_random_epoch(feed, seed=90)
        again = service.skim(graph, origins, destinations)
        assert again is not first
        assert again.fingerprint == graph.fingerprint
        assert again.fingerprint != first.fingerprint
        snap = service.snapshot()
        assert snap["skims_computed"] == 2
        assert snap["skim_hits"] == 1
        assert snap["skim_cells"] == 32

    def test_skim_agrees_with_plan_many(self):
        """The batch tier and the serving tier price pairs identically."""
        graph, service, _ = self.make_grid_service()
        rng = random.Random(10)
        nodes = sorted(n.node_id for n in graph.nodes())
        origins = rng.sample(nodes, 3)
        destinations = rng.sample(nodes, 3)
        matrix = service.skim(graph, origins, destinations)
        specs = [
            {"source": o, "destination": d, "algorithm": "dijkstra"}
            for o in origins
            for d in destinations
        ]
        answers = service.plan_many(graph, specs)
        for spec, answer in zip(specs, answers):
            expected = matrix.cost(spec["source"], spec["destination"])
            assert answer.cost == expected

    def test_select_link_sources_agree_on_served_pairs(self):
        """The cache's edge index and fresh trees tell the same story.

        For OD pairs that were actually *served* (so their routes sit
        in the cache), select-link from the inverted edge index must
        agree with select-link from a fresh path-retaining skim.
        """
        graph, service, _ = self.make_grid_service()
        rng = random.Random(11)
        nodes = sorted(n.node_id for n in graph.nodes())
        origins = rng.sample(nodes, 4)
        destinations = rng.sample(nodes, 4)
        demand = {
            (o, d): 7.0 for o in origins for d in destinations if o != d
        }
        # Serve every pair with a cost-optimal algorithm so the cache
        # holds provenance-bearing routes at the current fingerprint.
        for o, d in demand:
            service.plan(graph, o, d, algorithm="dijkstra")
        matrix = service.skim(graph, origins, destinations, retain_paths=True)
        links = sorted(
            {edge for _, _, edges in matrix.routes() for edge in edges}
        )[:6]
        via_skim = service.select_link(graph, links, demand=demand)
        via_cache = service.select_link(
            graph, links, demand=demand, source="cache"
        )
        assert via_skim.source == "skim" and via_cache.source == "cache"
        assert via_skim.fingerprint == via_cache.fingerprint
        for link in links:
            assert (
                via_skim.flow(link).pairs == via_cache.flow(link).pairs
            ), link
        assert service.cache.audit_index() == []

    def test_select_link_needs_zones_or_demand(self):
        graph, service, _ = self.make_grid_service()
        with pytest.raises(ValueError):
            service.select_link(graph, [((0, 0), (0, 1))])
        with pytest.raises(ValueError):
            service.select_link(graph, [], source="both")


# ---------------------------------------------------------------------------
# assignment
# ---------------------------------------------------------------------------
def two_route_network() -> Graph:
    """One OD pair, two parallel routes with different free-flow costs."""
    graph = Graph(name="two-route")
    graph.add_node("o", 0, 0)
    graph.add_node("a", 1, 1)
    graph.add_node("b", 1, -1)
    graph.add_node("d", 2, 0)
    graph.add_edge("o", "a", 5.0)
    graph.add_edge("a", "d", 5.0)
    graph.add_edge("o", "b", 6.0)
    graph.add_edge("b", "d", 6.0)
    return graph


class TestAssignment:
    def test_equilibrium_splits_flow_until_times_equalize(self):
        graph = two_route_network()
        demand = {("o", "d"): 100.0}
        result = assign(
            graph, demand, capacity=60.0, tolerance=1e-6,
            max_iterations=200,
        )
        assert result.converged
        assert result.relative_gap < 1e-6
        via_a = result.volumes[("o", "a")]
        via_b = result.volumes[("o", "b")]
        assert via_a + via_b == pytest.approx(100.0)
        assert via_a > via_b > 0  # both used; cheaper route carries more
        # Wardrop: used routes have (near-)equal congested times.
        time_a = result.costs[("o", "a")] + result.costs[("a", "d")]
        time_b = result.costs[("o", "b")] + result.costs[("b", "d")]
        assert time_a == pytest.approx(time_b, rel=1e-3)
        # Volumes are consistent along each route.
        assert result.volumes[("o", "a")] == pytest.approx(
            result.volumes[("a", "d")]
        )

    def test_msa_and_fw_agree_on_the_equilibrium(self):
        demand = {("o", "d"): 100.0}
        fw = assign(
            two_route_network(), demand, capacity=60.0,
            tolerance=1e-5, max_iterations=400,
        )
        msa = assign(
            two_route_network(), demand, capacity=60.0, method="msa",
            tolerance=1e-5, max_iterations=400,
        )
        assert fw.converged and msa.converged
        assert fw.volumes[("o", "a")] == pytest.approx(
            msa.volumes[("o", "a")], rel=1e-2
        )

    def test_volumes_conserve_demand_every_iteration(self):
        graph = make_paper_grid(6, "variance", seed=17)
        rng = random.Random(17)
        nodes = sorted(n.node_id for n in graph.nodes())
        zones = rng.sample(nodes, 5)
        demand = {
            (o, d): rng.uniform(10, 50)
            for o in zones
            for d in zones
            if o != d
        }
        result = assign(
            graph, demand, max_iterations=25, tolerance=1e-9,
            record_volumes=True,
        )
        total = sum(demand.values())
        for record in result.iterations:
            snapshot_volumes = record.volumes
            assert snapshot_volumes is not None
            probe = type(result)(
                graph_name=result.graph_name,
                method=result.method,
                converged=True,
                relative_gap=0.0,
                tolerance=1e-9,
                volumes=snapshot_volumes,
                costs={},
                free_flow={},
                capacity={},
                demand_total=total,
            )
            assert probe.conservation_residual(demand) < 1e-9 * max(1.0, total)

    def test_assignment_prices_flow_through_the_feed(self):
        """Congestion epochs reach feed subscribers like sensor updates."""
        graph = two_route_network()
        feed = TrafficFeed(graph)
        service = RouteService()
        feed.subscribe(service)
        before = service.epochs_applied
        result = assign(
            graph, {("o", "d"): 100.0}, feed=feed, capacity=60.0,
            tolerance=1e-4, max_iterations=100,
        )
        assert result.converged
        assert result.epochs_applied > 0
        assert service.epochs_applied - before == result.epochs_applied
        # The graph is left at the final congested prices the result
        # reports — a subscribed service now serves congested routes.
        for (u, v), cost in result.costs.items():
            assert graph.edge_cost(u, v) == cost

    def test_unreachable_demand_refuses_to_assign(self, disconnected_graph):
        with pytest.raises(ValueError, match="unreachable"):
            assign(disconnected_graph, {("a", "z"): 5.0})

    def test_validation_errors(self, tiny_graph):
        with pytest.raises(NodeNotFoundError):
            assign(tiny_graph, {("a", "missing"): 1.0})
        with pytest.raises(ValueError):
            assign(tiny_graph, {("a", "e"): -1.0})
        with pytest.raises(ValueError):
            assign(tiny_graph, {("a", "e"): math.nan})
        with pytest.raises(ValueError):
            assign(tiny_graph, {("a", "e"): 1.0}, method="magic")
        with pytest.raises(ValueError):
            assign(tiny_graph, {("a", "e"): 1.0}, capacity=0.0)
        with pytest.raises(ValueError):
            assign(tiny_graph, {("a", "e"): 1.0}, max_iterations=0)
        with pytest.raises(ValueError):
            assign(tiny_graph, {("a", "e"): 1.0}, tolerance=0.0)
        with pytest.raises(ValueError):
            assign(
                tiny_graph, {("a", "e"): 1.0},
                capacity={("a", "b"): 10.0},  # does not cover every edge
            )

    def test_empty_and_zero_demand_is_trivially_converged(self, tiny_graph):
        result = assign(tiny_graph, {})
        assert result.converged
        assert result.iteration_count == 1
        assert result.demand_total == 0.0
        zero = assign(tiny_graph, {("a", "e"): 0.0, ("a", "a"): 9.0})
        assert zero.converged
        assert all(v == 0.0 for v in zero.volumes.values())

    def test_auditor_sees_every_iteration_and_can_abort(self):
        graph = two_route_network()
        seen = []

        def auditor(iteration, g, matrix, aon):
            seen.append(iteration)
            assert matrix.trees is not None
            assert sum(aon.values()) > 0

        result = assign(
            graph, {("o", "d"): 50.0}, capacity=60.0,
            max_iterations=30, tolerance=1e-4, auditor=auditor,
        )
        assert seen == [r.number for r in result.iterations][: len(seen)]
        assert len(seen) >= result.iteration_count - 1

        class Abort(RuntimeError):
            pass

        def bomb(iteration, g, matrix, aon):
            raise Abort()

        with pytest.raises(Abort):
            assign(
                two_route_network(), {("o", "d"): 50.0},
                capacity=60.0, auditor=bomb,
            )

    def test_bpr_curve_shape(self):
        params = BPRParams(alpha=0.15, beta=4.0)
        assert params.travel_time(10.0, 0.0, 100.0) == 10.0
        assert params.travel_time(10.0, 100.0, 100.0) == pytest.approx(11.5)
        assert params.travel_time(10.0, 200.0, 100.0) == pytest.approx(
            10.0 * (1 + 0.15 * 16)
        )

    def test_summary_and_repr_shapes(self, tiny_graph):
        matrix = skim(tiny_graph, ["a"], ["e"])
        assert "1x1" in repr(matrix)
        assert isinstance(matrix, SkimMatrix)
        result = assign(tiny_graph, {("a", "e"): 10.0}, capacity=20.0)
        summary = result.summary()
        assert summary["converged"] == 1.0
        assert summary["demand_total"] == 10.0
