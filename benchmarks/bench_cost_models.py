"""Benchmark E3 — Table 7 + Figure 7 (effect of edge-cost models)."""

from benchmarks.conftest import attach_result, run_once
from repro.experiments.exp_cost_models import render, run


def test_bench_table7_figure7(benchmark):
    result = run_once(benchmark, run)
    attach_result(benchmark, result)
    print()
    print(render(result))
    # Skew collapses the estimator algorithms' work.
    assert (
        result.iterations["astar-v3"]["skewed"]
        < result.iterations["astar-v3"]["variance"] / 4
    )
