"""Unit tests for the serving-layer building blocks: RouteCache,
EstimatorPool and ServiceMetrics."""

import pytest

from repro.core.estimators import LandmarkEstimator
from repro.graphs.grid import make_grid
from repro.service.cache import RouteCache, query_key
from repro.service.metrics import QueryMetrics, ServiceMetrics
from repro.service.pool import EstimatorPool

pytestmark = pytest.mark.service


def _key(graph, source=(0, 0), destination=(3, 3), algorithm="astar",
         estimator="euclidean", weight=1.0):
    return query_key(graph, source, destination, algorithm, estimator, weight)


class TestRouteCache:
    def test_miss_then_hit(self):
        graph = make_grid(4)
        cache = RouteCache(capacity=4)
        key = _key(graph)
        assert cache.get(key) is None
        cache.put(key, "answer")
        assert cache.get(key) == "answer"
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_lru_evicts_least_recently_used(self):
        graph = make_grid(4)
        cache = RouteCache(capacity=2)
        keys = [_key(graph, destination=(0, d)) for d in range(3)]
        cache.put(keys[0], "a")
        cache.put(keys[1], "b")
        cache.get(keys[0])  # refresh key 0
        cache.put(keys[2], "c")  # evicts key 1
        assert cache.get(keys[0]) == "a"
        assert cache.get(keys[1]) is None
        assert cache.get(keys[2]) == "c"
        assert cache.evictions == 1

    def test_capacity_zero_disables_caching(self):
        graph = make_grid(4)
        cache = RouteCache(capacity=0)
        key = _key(graph)
        cache.put(key, "answer")
        assert cache.get(key) is None
        assert len(cache) == 0

    def test_fingerprint_change_is_a_miss(self):
        """An edge-cost refresh changes the graph fingerprint, so the
        same (source, destination) query can never hit a stale entry."""
        graph = make_grid(4)
        cache = RouteCache(capacity=8)
        cache.put(_key(graph), "stale")
        graph.update_edge_cost((0, 0), (0, 1), 9.0)
        assert cache.get(_key(graph)) is None

    def test_invalidate_graph_scopes_to_that_graph(self):
        graph_a = make_grid(4)
        graph_b = make_grid(4)
        cache = RouteCache(capacity=8)
        cache.put(_key(graph_a), "a")
        cache.put(_key(graph_b), "b")
        evicted = cache.invalidate_graph(graph_a)
        assert evicted == 1
        assert cache.get(_key(graph_a)) is None
        assert cache.get(_key(graph_b)) == "b"
        assert cache.invalidations == 1

    def test_invalidate_reclaims_old_version_slots(self):
        graph = make_grid(4)
        cache = RouteCache(capacity=8)
        cache.put(_key(graph), "v0")
        graph.update_edge_cost((0, 0), (0, 1), 9.0)
        cache.put(_key(graph), "v1")
        assert len(cache) == 2  # old-version entry still occupies a slot
        assert cache.invalidate_graph(graph) == 2
        assert len(cache) == 0

    def test_snapshot_is_plain_numbers(self):
        cache = RouteCache(capacity=4)
        snap = cache.snapshot()
        assert set(snap) == {
            "capacity", "size", "hits", "misses", "evictions",
            "invalidations", "rekeyed", "indexed_edges", "hit_rate",
        }
        assert all(isinstance(value, (int, float)) for value in snap.values())


class TestInvalidateEdgesRekeyTarget:
    """Regression tests for the survivor re-key fingerprint.

    ``invalidate_edges`` used to re-key survivors to the *live*
    ``graph.fingerprint``. When updates race ahead of epoch handling
    (the graph is already at v3 while the subscriber processes the
    v1->v2 epoch), that default leapfrogged survivors straight past the
    intervening epoch's delta analysis, leaving provably stale answers
    live at the newest fingerprint. Survivors must land at the epoch's
    *own* produced fingerprint instead.
    """

    def _seed_entry(self, graph, cache):
        """Cache one provenance-bearing answer at the current state."""
        key = _key(graph, source=(0, 0), destination=(0, 1))
        cache.put(key, "route", edges=[((0, 0), (0, 1))], cost=1.0)
        return key

    def _bump(self, graph, source, target, cost):
        """Raise one far-away edge cost; return the delta + new print."""
        from repro.graphs.graph import CostDelta

        old = graph.edge_cost(source, target)
        assert cost > old  # increases keep the decrease bound out of play
        graph.update_edge_cost(source, target, cost)
        return CostDelta(source, target, old, cost), graph.fingerprint

    def test_survivor_rekeys_to_epoch_fingerprint_not_live(self):
        graph = make_grid(4)
        cache = RouteCache(capacity=8)
        key1 = self._seed_entry(graph, cache)
        fp1 = graph.fingerprint
        delta1, fp2 = self._bump(graph, (3, 3), (2, 3), 90.0)
        delta2, fp3 = self._bump(graph, (3, 3), (3, 2), 91.0)
        assert fp1 != fp2 != fp3

        # Process epoch 1 while the graph is already at fp3.
        report = cache.invalidate_edges(
            graph, [delta1], previous_fingerprint=fp1, new_fingerprint=fp2
        )
        assert report.rekeyed == 1 and report.evicted == 0
        assert cache.get((fp2,) + key1[1:]) == "route"
        # The old behaviour would make this a (stale) hit at fp3.
        assert cache.get((fp3,) + key1[1:]) is None
        assert cache.audit_index() == []

        # Processing epoch 2 in order brings the survivor up to fp3.
        report = cache.invalidate_edges(
            graph, [delta2], previous_fingerprint=fp2, new_fingerprint=fp3
        )
        assert report.rekeyed == 1 and report.evicted == 0
        assert cache.get((fp3,) + key1[1:]) == "route"
        assert cache.audit_index() == []

    def test_leapfrog_would_have_served_a_stale_answer(self):
        """The concrete hazard: epoch 2 re-prices the cached route's
        own edge. A survivor leapfrogged to fp3 during epoch-1 handling
        would serve that re-priced route as current; pinning the re-key
        to fp2 lets epoch-2 handling evict it before fp3 lookups hit."""
        graph = make_grid(4)
        cache = RouteCache(capacity=8)
        key1 = self._seed_entry(graph, cache)
        fp1 = graph.fingerprint
        delta1, fp2 = self._bump(graph, (3, 3), (2, 3), 90.0)
        delta2, fp3 = self._bump(graph, (0, 0), (0, 1), 91.0)  # the route!

        cache.invalidate_edges(
            graph, [delta1], previous_fingerprint=fp1, new_fingerprint=fp2
        )
        cache.invalidate_edges(
            graph, [delta2], previous_fingerprint=fp2, new_fingerprint=fp3
        )
        assert cache.get((fp3,) + key1[1:]) is None
        assert len(cache) == 0
        assert cache.audit_index() == []

    def test_default_rekey_target_is_still_the_live_fingerprint(self):
        """Quiesced, strictly-in-order callers that pass no
        ``new_fingerprint`` keep the old (sound, in that regime)
        behaviour: survivors land at the live fingerprint."""
        graph = make_grid(4)
        cache = RouteCache(capacity=8)
        key1 = self._seed_entry(graph, cache)
        fp1 = graph.fingerprint
        delta1, fp2 = self._bump(graph, (3, 3), (2, 3), 90.0)
        report = cache.invalidate_edges(
            graph, [delta1], previous_fingerprint=fp1
        )
        assert report.rekeyed == 1
        assert cache.get((fp2,) + key1[1:]) == "route"
        assert cache.audit_index() == []


class TestRoutesCrossing:
    def test_reads_the_inverted_index_forwards(self):
        graph = make_grid(4)
        cache = RouteCache(capacity=8)
        edges_a = [((0, 0), (0, 1)), ((0, 1), (0, 2))]
        edges_b = [((1, 0), (1, 1))]
        cache.put(_key(graph, source=(0, 0), destination=(0, 2)),
                  "a", edges=edges_a, cost=2.0)
        cache.put(_key(graph, source=(1, 0), destination=(1, 1)),
                  "b", edges=edges_b, cost=1.0)
        hits = cache.routes_crossing(graph, [((0, 1), (0, 2))])
        assert [(s, d) for s, d, _ in hits] == [((0, 0), (0, 2))]
        assert hits[0][2] == frozenset(edges_a)
        # An un-crossed link yields nothing; serving counters untouched.
        assert cache.routes_crossing(graph, [((3, 3), (3, 2))]) == []
        assert cache.hits == 0 and cache.misses == 0

    def test_stale_fingerprint_entries_are_filtered(self):
        """Between epochs the index legally holds old-fingerprint
        entries; select-link must never report their routes."""
        graph = make_grid(4)
        cache = RouteCache(capacity=8)
        cache.put(_key(graph, source=(0, 0), destination=(0, 1)),
                  "old", edges=[((0, 0), (0, 1))], cost=1.0)
        graph.update_edge_cost((3, 3), (2, 3), 90.0)
        assert cache.routes_crossing(graph, [((0, 0), (0, 1))]) == []
        assert len(cache) == 1  # the entry itself is still cached
        assert cache.audit_index() == []
    def test_acquire_release_reuses_instance(self):
        graph = make_grid(5)
        pool = EstimatorPool()
        first = pool.acquire("euclidean", graph)
        pool.release("euclidean", first)
        second = pool.acquire("euclidean", graph)
        assert second is first
        assert pool.created == 1 and pool.reused == 1

    def test_concurrent_checkouts_get_distinct_instances(self):
        graph = make_grid(5)
        pool = EstimatorPool()
        first = pool.acquire("euclidean", graph)
        second = pool.acquire("euclidean", graph)
        assert second is not first

    def test_landmark_preprocessed_on_build(self):
        graph = make_grid(5)
        pool = EstimatorPool(landmark_count=2)
        estimator = pool.acquire("landmark", graph)
        assert isinstance(estimator, LandmarkEstimator)
        assert estimator._prepared_for == graph.fingerprint

    def test_landmark_pool_retired_by_cost_update(self):
        """After a traffic update the old instance must not be reissued."""
        graph = make_grid(5)
        pool = EstimatorPool(landmark_count=2)
        old = pool.acquire("landmark", graph)
        pool.release("landmark", old)
        graph.update_edge_cost((0, 0), (0, 1), 7.0)
        fresh = pool.acquire("landmark", graph)
        assert fresh is not old
        assert fresh._prepared_for == graph.fingerprint

    def test_release_of_foreign_instance_is_noop(self):
        graph = make_grid(5)
        pool = EstimatorPool()
        from repro.core.estimators import EuclideanEstimator

        pool.release("euclidean", EuclideanEstimator())
        assert pool.acquire("euclidean", graph) is not None
        assert pool.created == 1

    def test_estimator_kwargs_forwarded(self):
        graph = make_grid(5)
        pool = EstimatorPool(
            estimator_kwargs={"euclidean": {"cost_per_unit": 0.5}}
        )
        estimator = pool.acquire("euclidean", graph)
        assert estimator.cost_per_unit == 0.5


class TestServiceMetrics:
    def _query(self, **overrides):
        defaults = dict(
            algorithm="astar", estimator="euclidean", cache_hit=False,
            latency_s=0.01, nodes_expanded=5, iterations=5, cost=3.0,
            found=True,
        )
        defaults.update(overrides)
        return QueryMetrics(**defaults)

    def test_aggregation(self):
        metrics = ServiceMetrics()
        metrics.record(self._query())
        metrics.record(self._query(cache_hit=True, latency_s=0.001))
        metrics.record(self._query(found=False))
        snap = metrics.snapshot()
        assert snap["queries"] == 3
        assert snap["cache_hits"] == 1
        assert snap["cache_misses"] == 2
        assert snap["cache_hit_rate"] == pytest.approx(1 / 3)
        assert snap["not_found"] == 1
        assert snap["nodes_expanded"] == 15
        assert snap["average_latency_s"] == pytest.approx(0.021 / 3)

    def test_reset(self):
        metrics = ServiceMetrics()
        metrics.record(self._query())
        metrics.reset()
        assert metrics.snapshot()["queries"] == 0
        assert metrics.recent == []

    def test_recent_bounded(self):
        metrics = ServiceMetrics(keep_last=3)
        for _ in range(10):
            metrics.record(self._query())
        assert len(metrics.recent) == 3
        assert metrics.queries == 10
