"""Analytical cost model — Section 4 of the paper."""

from repro.costmodel.params import (
    CostParameters,
    PAPER_TABLE_4A,
    parameters_for_grid,
)
from repro.costmodel.join_cost import (
    STRATEGY_COSTS,
    hash_join_cost,
    join_cost,
    nested_loop_cost,
    primary_key_cost,
    sort_merge_cost,
)
from repro.costmodel.iterative_model import (
    IterativeCostBreakdown,
    iterative_init_cost,
    iterative_iteration_cost,
    predict_iterative,
)
from repro.costmodel.dijkstra_model import (
    BestFirstCostBreakdown,
    best_first_cleanup_cost,
    best_first_init_cost,
    best_first_iteration_cost,
    predict_best_first,
)
from repro.costmodel.predictor import (
    CostPrediction,
    predict_from_iterations,
    predict_run,
    prediction_error,
    table_4b,
)

__all__ = [
    "CostParameters",
    "PAPER_TABLE_4A",
    "parameters_for_grid",
    "STRATEGY_COSTS",
    "join_cost",
    "nested_loop_cost",
    "hash_join_cost",
    "sort_merge_cost",
    "primary_key_cost",
    "IterativeCostBreakdown",
    "iterative_init_cost",
    "iterative_iteration_cost",
    "predict_iterative",
    "BestFirstCostBreakdown",
    "best_first_init_cost",
    "best_first_iteration_cost",
    "best_first_cleanup_cost",
    "predict_best_first",
    "CostPrediction",
    "predict_from_iterations",
    "predict_run",
    "prediction_error",
    "table_4b",
]
