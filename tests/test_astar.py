"""Tests for A* best-first search — Figure 3."""

import pytest

from repro.exceptions import NodeNotFoundError
from repro.core.astar import astar_search, greedy_best_first_search
from repro.core.dijkstra import dijkstra_search
from repro.core.estimators import (
    EuclideanEstimator,
    ManhattanEstimator,
    ScaledEstimator,
    ZeroEstimator,
)
from repro.graphs.grid import make_grid, make_paper_grid


class TestCorrectness:
    def test_finds_shortest_path_with_euclidean(self, tiny_graph):
        result = astar_search(tiny_graph, "a", "e", EuclideanEstimator())
        assert result.found
        assert result.cost == pytest.approx(4.0)

    def test_zero_estimator_matches_dijkstra_cost(self, grid10_variance):
        a = astar_search(grid10_variance, (0, 0), (9, 9), ZeroEstimator())
        d = dijkstra_search(grid10_variance, (0, 0), (9, 9))
        assert a.cost == pytest.approx(d.cost)

    def test_default_estimator_is_zero(self, tiny_graph):
        result = astar_search(tiny_graph, "a", "e")
        assert result.estimator == "zero"
        assert result.cost == pytest.approx(4.0)

    def test_source_equals_destination(self, tiny_graph):
        result = astar_search(tiny_graph, "a", "a", EuclideanEstimator())
        assert result.found and result.path == ["a"]

    def test_unreachable(self, disconnected_graph):
        result = astar_search(
            disconnected_graph, "a", "z", EuclideanEstimator()
        )
        assert not result.found

    def test_missing_nodes_raise(self, tiny_graph):
        with pytest.raises(NodeNotFoundError):
            astar_search(tiny_graph, "a", "nope", ZeroEstimator())

    def test_manhattan_optimal_on_uniform_grid(self):
        """Lemma 3 applies: manhattan is admissible on uniform grids."""
        graph = make_grid(9)
        a = astar_search(graph, (0, 0), (8, 8), ManhattanEstimator())
        d = dijkstra_search(graph, (0, 0), (8, 8))
        assert a.cost == pytest.approx(d.cost)


class TestFocusing:
    def test_manhattan_explores_fewer_nodes_than_dijkstra(self):
        graph = make_paper_grid(15, "variance")
        a = astar_search(graph, (0, 0), (0, 14), ManhattanEstimator())
        d = dijkstra_search(graph, (0, 0), (0, 14))
        assert a.iterations < d.iterations / 3

    def test_uniform_grid_straight_line_is_cheap(self):
        """Tie-breaking toward the goal keeps uniform grids cheap."""
        graph = make_grid(20)
        result = astar_search(graph, (0, 0), (19, 19), ManhattanEstimator())
        assert result.iterations <= 2 * 2 * 19  # ~path length, not ~n

    def test_estimator_quality_ordering(self):
        """Better estimators expand no more nodes (manhattan <= euclid
        <= zero on a uniform grid)."""
        graph = make_grid(12)
        query = ((0, 0), (11, 11))
        zero = astar_search(graph, *query, ZeroEstimator()).iterations
        euclid = astar_search(graph, *query, EuclideanEstimator()).iterations
        manhattan = astar_search(graph, *query, ManhattanEstimator()).iterations
        assert manhattan <= euclid <= zero


class TestInadmissible:
    def test_inflated_estimator_may_be_suboptimal_but_finds_path(
        self, grid10_variance
    ):
        heavy = ScaledEstimator(ManhattanEstimator(), 3.0)
        result = astar_search(grid10_variance, (0, 0), (9, 9), heavy)
        optimal = dijkstra_search(grid10_variance, (0, 0), (9, 9))
        assert result.found
        assert result.cost >= optimal.cost - 1e-9
        assert grid10_variance.is_valid_path(result.path)

    def test_weighted_astar_is_faster(self, grid20_variance):
        exact = astar_search(
            grid20_variance, (0, 0), (19, 19), ManhattanEstimator()
        )
        weighted = astar_search(
            grid20_variance,
            (0, 0),
            (19, 19),
            ScaledEstimator(ManhattanEstimator(), 2.0),
        )
        assert weighted.iterations < exact.iterations

    def test_manhattan_on_road_map_never_beats_optimum(self, minneapolis):
        graph = minneapolis.graph
        source = minneapolis.landmark("A")
        destination = minneapolis.landmark("B")
        fast = astar_search(graph, source, destination, ManhattanEstimator())
        optimal = dijkstra_search(graph, source, destination)
        assert fast.found
        assert fast.cost >= optimal.cost - 1e-9

    def test_iteration_guard(self, grid10_variance):
        with pytest.raises(RuntimeError):
            astar_search(
                grid10_variance,
                (0, 0),
                (9, 9),
                ZeroEstimator(),
                max_iterations=3,
            )


class TestGreedy:
    def test_finds_a_valid_path(self, grid10_variance):
        result = greedy_best_first_search(
            grid10_variance, (0, 0), (9, 9), ManhattanEstimator()
        )
        assert result.found
        assert grid10_variance.is_valid_path(result.path)

    def test_cost_is_path_cost(self, grid10_variance):
        result = greedy_best_first_search(
            grid10_variance, (0, 0), (9, 9), ManhattanEstimator()
        )
        assert result.cost == pytest.approx(
            grid10_variance.path_cost(result.path)
        )

    def test_fewer_iterations_than_astar(self, grid20_variance):
        greedy = greedy_best_first_search(
            grid20_variance, (0, 0), (19, 19), ManhattanEstimator()
        )
        exact = astar_search(
            grid20_variance, (0, 0), (19, 19), ManhattanEstimator()
        )
        assert greedy.iterations <= exact.iterations

    def test_unreachable(self, disconnected_graph):
        result = greedy_best_first_search(
            disconnected_graph, "a", "z", EuclideanEstimator()
        )
        assert not result.found
