"""Relational best-first execution: Dijkstra and the A* versions.

This module runs Figure 2 / Figure 3 as database programs over the
S and R relations, following the ten cost steps of Table 3:

1-3. create, populate and index R (skipped by A* version 1, which
     builds R lazily);
4.   open the source node;
per iteration:
5.   select the best open node (a scan of the frontier);
6.   move it to the explored set;
7.   join it with S to fetch its adjacency list (optimizer-chosen plan);
8.   conditionally REPLACE each neighbor's label;
9.   terminate when the destination is selected;
10.  reconstruct the path by chasing R.path pointers, then drop the
     temporaries.

The paper's three A* versions map onto two orthogonal switches:

========  ====================  ==========
version   frontier              estimator
========  ====================  ==========
v1        separate relation     euclidean
v2        status attribute      euclidean
v3        status attribute      manhattan
========  ====================  ==========

Dijkstra is the status-attribute frontier with the zero estimator.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.exceptions import NodeNotFoundError, PlannerError
from repro.graphs.graph import Graph, NodeId
from repro.core.estimators import (
    Estimator,
    EuclideanEstimator,
    ManhattanEstimator,
    ZeroEstimator,
)
from repro.engine.frontier import (
    SeparateRelationFrontier,
    StatusAttributeFrontier,
)
from repro.engine.relational_graph import RelationalGraph, UNLABELLED
from repro.engine.tracing import IterationRecord, RelationalRunResult

#: variant name -> (frontier kind, estimator factory)
ASTAR_VERSIONS = {
    "v1": ("separate-relation", EuclideanEstimator),
    "v2": ("status-attribute", EuclideanEstimator),
    "v3": ("status-attribute", ManhattanEstimator),
}


def run_best_first(
    rgraph: RelationalGraph,
    source: NodeId,
    destination: NodeId,
    estimator: Optional[Estimator] = None,
    frontier_kind: str = "status-attribute",
    algorithm: str = "astar",
    variant: str = "",
    max_iterations: Optional[int] = None,
) -> RelationalRunResult:
    """Execute one best-first single-pair query against the database.

    The relational graph's statistics ledger is reset first, so the
    returned costs cover exactly this run (graph loading is catalogued
    data, not query work — the paper's cost steps likewise start at
    "creating the resultant relation R").
    """
    graph = rgraph.graph
    if source not in graph:
        raise NodeNotFoundError(source)
    if destination not in graph:
        raise NodeNotFoundError(destination)

    stats = rgraph.stats
    stats.reset()
    # Absorb any traffic epochs first: the run must price this epoch's
    # costs, and the re-fetch I/O is part of this run's bill.
    rgraph.sync()
    estimator = estimator if estimator is not None else ZeroEstimator()
    estimator.prepare(graph, destination)

    def key_of(node_tuple: dict) -> float:
        return node_tuple["path_cost"] + estimator.estimate(
            graph, node_tuple["node_id"], destination
        )

    # ------------------------------------------------------------ init
    with stats.phase("init"):
        if frontier_kind == "status-attribute":
            R = rgraph.fresh_node_relation(populate=True)  # C1-C3
            frontier = StatusAttributeFrontier(R, stats, key_of)
        elif frontier_kind == "separate-relation":
            R = rgraph.fresh_node_relation(populate=False)  # C1 only
            frontier = SeparateRelationFrontier(
                rgraph.db.create_relation, R, graph, stats, key_of
            )
        else:
            raise PlannerError(f"unknown frontier kind {frontier_kind!r}")
        frontier.open_node(source, 0.0, None)  # C4

    result = RelationalRunResult(
        algorithm=algorithm,
        variant=variant or frontier_kind,
        source=source,
        destination=destination,
        io=stats,
    )
    limit = max_iterations if max_iterations is not None else 20 * len(graph) + 100

    # --------------------------------------------------------- iterate
    found_tuple: Optional[dict] = None
    while True:
        with stats.phase("iterate"):
            best = frontier.select_best()  # C5
            if best is None:
                break
            if best["node_id"] == destination:
                found_tuple = best
                break
            frontier.close(best)  # C6
            result.iterations += 1
            if result.iterations > limit:
                raise PlannerError(
                    f"relational best-first exceeded {limit} iterations"
                )
            outer = [{k: v for k, v in best.items() if k != "_rid"}]
            joined, plan = rgraph.adjacency_join(outer)  # C7
            updates = 0
            for row in joined:  # C8
                neighbor = row["end"]
                new_cost = best["path_cost"] + row["cost"]
                if frontier.relax(neighbor, new_cost, best["node_id"]):
                    updates += 1
            result.trace.append(
                IterationRecord(
                    index=result.iterations,
                    expanded_nodes=1,
                    join_result_tuples=len(joined),
                    join_strategy=plan.strategy_name,
                    updates_applied=updates,
                    frontier_size_after=frontier.size(),
                    cumulative_cost=stats.cost,
                )
            )

    # --------------------------------------------------------- cleanup
    with stats.phase("cleanup"):
        if found_tuple is not None:
            result.found = True
            result.cost = found_tuple["path_cost"]
            result.path = _chase_path_pointers(
                frontier, source, destination, len(graph)
            )
        rgraph.drop_node_relation(R)
        if isinstance(frontier, SeparateRelationFrontier):
            rgraph.db.drop_relation(frontier.F.name)

    result.init_cost = stats.phase_cost("init")
    result.iteration_cost = stats.phase_cost("iterate")
    result.cleanup_cost = stats.phase_cost("cleanup")
    result.sync_cost = stats.phase_cost("traffic-sync")
    return result


def _chase_path_pointers(
    frontier, source: NodeId, destination: NodeId, node_count: int
) -> list:
    """Reconstruct the path by keyed fetches along R.path (step 10)."""
    path = [destination]
    current = destination
    hops = 0
    while current != source:
        label = _read_label(frontier, current)
        if label is None or label["path"] is None:
            raise PlannerError(
                f"path pointer chain broken at {current!r}"
            )
        current = label["path"]
        path.append(current)
        hops += 1
        if hops > node_count + 1:
            raise PlannerError("path pointer chain exceeds node count")
    path.reverse()
    return path


def _read_label(frontier, node_id: NodeId) -> Optional[dict]:
    if isinstance(frontier, StatusAttributeFrontier):
        return frontier.R.fetch_by_key(node_id)
    return frontier._read_node(node_id)


# ----------------------------------------------------------------------
# named entry points
# ----------------------------------------------------------------------
def run_dijkstra(
    rgraph: RelationalGraph, source: NodeId, destination: NodeId
) -> RelationalRunResult:
    """Figure 2 over relations: zero estimator, status frontier."""
    return run_best_first(
        rgraph,
        source,
        destination,
        estimator=ZeroEstimator(),
        frontier_kind="status-attribute",
        algorithm="dijkstra",
        variant="status-attribute",
    )


def run_astar(
    rgraph: RelationalGraph,
    source: NodeId,
    destination: NodeId,
    version: str = "v3",
    estimator: Optional[Estimator] = None,
) -> RelationalRunResult:
    """Figure 3 over relations, in one of the paper's three versions.

    ``estimator`` overrides the version's default estimator (used by
    the estimator-quality ablations); the frontier kind always follows
    the version.
    """
    try:
        frontier_kind, estimator_factory = ASTAR_VERSIONS[version]
    except KeyError:
        raise PlannerError(
            f"unknown A* version {version!r}; known: "
            f"{', '.join(sorted(ASTAR_VERSIONS))}"
        ) from None
    return run_best_first(
        rgraph,
        source,
        destination,
        estimator=estimator if estimator is not None else estimator_factory(),
        frontier_kind=frontier_kind,
        algorithm="astar",
        variant=version,
    )
