"""Tests for bidirectional Dijkstra (the extension planner)."""

import pytest

from repro.core.bidirectional import bidirectional_search
from repro.core.dijkstra import dijkstra_search
from repro.graphs.grid import make_grid, make_paper_grid
from repro.graphs.random_graphs import random_sparse_directed


class TestCorrectness:
    def test_tiny_graph(self, tiny_graph):
        result = bidirectional_search(tiny_graph, "a", "e")
        assert result.found
        assert result.cost == pytest.approx(4.0)
        assert tiny_graph.is_valid_path(result.path)

    def test_source_equals_destination(self, tiny_graph):
        result = bidirectional_search(tiny_graph, "b", "b")
        assert result.found and result.path == ["b"] and result.cost == 0.0

    def test_unreachable(self, disconnected_graph):
        assert not bidirectional_search(disconnected_graph, "a", "z").found

    def test_matches_dijkstra_on_grids(self, grid10_variance):
        for destination in ((9, 9), (0, 9), (5, 3)):
            bi = bidirectional_search(grid10_variance, (0, 0), destination)
            uni = dijkstra_search(grid10_variance, (0, 0), destination)
            assert bi.found == uni.found
            assert bi.cost == pytest.approx(uni.cost)
            assert grid10_variance.path_cost(bi.path) == pytest.approx(uni.cost)

    def test_matches_dijkstra_on_directed_random_graphs(self):
        for seed in range(5):
            graph = random_sparse_directed(40, 80, seed=seed)
            bi = bidirectional_search(graph, 0, 20)
            uni = dijkstra_search(graph, 0, 20)
            assert bi.cost == pytest.approx(uni.cost)


class TestEfficiency:
    def test_fewer_expansions_than_unidirectional(self):
        graph = make_grid(25)
        bi = bidirectional_search(graph, (0, 0), (24, 24))
        uni = dijkstra_search(graph, (0, 0), (24, 24))
        assert bi.stats.nodes_expanded < uni.stats.nodes_expanded

    def test_path_is_reconstructed_through_meeting_point(self):
        graph = make_paper_grid(12, "variance")
        result = bidirectional_search(graph, (0, 0), (11, 11))
        assert result.path[0] == (0, 0)
        assert result.path[-1] == (11, 11)
        assert graph.path_cost(result.path) == pytest.approx(result.cost)
