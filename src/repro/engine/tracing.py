"""Execution traces and results for the relational engine.

The paper extracts iteration counts "from the trace of the actual
execution of the algorithms" and feeds them to the analytical cost
model. :class:`IterationRecord` is one line of that trace;
:class:`RelationalRunResult` is everything a run produces — the path,
the trace, the raw I/O counters and the phase-attributed cost in the
paper's units.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.storage.iostats import IOStatistics


@dataclass
class IterationRecord:
    """One iteration of a relational algorithm run."""

    index: int
    expanded_nodes: int  # |C|: current nodes this iteration
    join_result_tuples: int  # |JOIN|: neighbor paths produced
    join_strategy: str
    updates_applied: int  # labels improved and written back
    frontier_size_after: int
    cumulative_cost: float


@dataclass
class RelationalRunResult:
    """Outcome of one DB-backed single-pair computation."""

    algorithm: str
    variant: str
    source: object
    destination: object
    path: List[object] = field(default_factory=list)
    cost: float = float("inf")
    found: bool = False
    iterations: int = 0
    trace: List[IterationRecord] = field(default_factory=list)
    io: Optional[IOStatistics] = None
    init_cost: float = 0.0
    iteration_cost: float = 0.0
    cleanup_cost: float = 0.0

    @property
    def execution_cost(self) -> float:
        """Total weighted cost — the paper's "execution time" axis."""
        if self.io is None:
            return self.init_cost + self.iteration_cost + self.cleanup_cost
        return self.io.cost

    @property
    def path_length(self) -> int:
        return max(0, len(self.path) - 1)

    def average_iteration_cost(self) -> float:
        """The model's Gamma_average."""
        if not self.iterations:
            return 0.0
        return self.iteration_cost / self.iterations

    def join_strategy_histogram(self) -> Dict[str, int]:
        """How often each join plan was chosen across iterations."""
        histogram: Dict[str, int] = {}
        for record in self.trace:
            histogram[record.join_strategy] = (
                histogram.get(record.join_strategy, 0) + 1
            )
        return histogram

    def __repr__(self) -> str:
        status = f"cost={self.cost:.4g}" if self.found else "not-found"
        return (
            f"RelationalRunResult({self.algorithm}/{self.variant}, "
            f"{self.source!r} -> {self.destination!r}, {status}, "
            f"iterations={self.iterations}, "
            f"exec={self.execution_cost:.2f} units)"
        )
