"""Route evaluation — the second ATIS facility of Section 1.1.

"The goal of route evaluation is to find the attributes of a given
route between two points. These attributes may include travel time and
traffic congestion information."

Given a path and per-segment road attributes (speed, occupancy, road
type — the fields the paper's Minneapolis data carries), this module
computes the travel-time and congestion profile of a route, supports
dynamic travel-time costs (occupancy-scaled speeds), and compares
candidate routes — the "route evaluation is useful for selecting travel
time by a familiar path" use case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import GraphError
from repro.graphs.graph import Graph, NodeId
from repro.graphs.roadmap import MinneapolisMap, RoadAttributes


@dataclass(frozen=True)
class SegmentEvaluation:
    """Evaluation of a single road segment along a route."""

    source: NodeId
    target: NodeId
    distance_miles: float
    road_type: str
    speed_mph: float
    effective_speed_mph: float
    travel_time_minutes: float
    occupancy: float


@dataclass
class RouteEvaluation:
    """Aggregate attributes of one route."""

    path: List[NodeId]
    segments: List[SegmentEvaluation] = field(default_factory=list)

    @property
    def total_distance_miles(self) -> float:
        return sum(s.distance_miles for s in self.segments)

    @property
    def total_time_minutes(self) -> float:
        return sum(s.travel_time_minutes for s in self.segments)

    @property
    def average_occupancy(self) -> float:
        if not self.segments:
            return 0.0
        weighted = sum(s.occupancy * s.distance_miles for s in self.segments)
        distance = self.total_distance_miles
        return weighted / distance if distance else 0.0

    @property
    def congested_fraction(self) -> float:
        """Share of route distance on segments with occupancy > 0.6."""
        distance = self.total_distance_miles
        if not distance:
            return 0.0
        congested = sum(
            s.distance_miles for s in self.segments if s.occupancy > 0.6
        )
        return congested / distance

    def road_type_breakdown(self) -> Dict[str, float]:
        """Distance (miles) travelled per road type."""
        breakdown: Dict[str, float] = {}
        for segment in self.segments:
            breakdown[segment.road_type] = (
                breakdown.get(segment.road_type, 0.0) + segment.distance_miles
            )
        return breakdown


def effective_speed(attributes: RoadAttributes) -> float:
    """Occupancy-degraded speed.

    A linear congestion model: at zero occupancy traffic flows at the
    speed limit, at full occupancy it crawls at 20% of it. Simple, but
    monotone and bounded — exactly what the evaluation facility needs
    to rank alternative routes consistently.
    """
    factor = 1.0 - 0.8 * min(1.0, max(0.0, attributes.occupancy))
    return attributes.speed_mph * factor


def evaluate_route(
    road_map: MinneapolisMap, path: Sequence[NodeId]
) -> RouteEvaluation:
    """Compute the attribute profile of ``path`` on ``road_map``."""
    graph = road_map.graph
    if len(path) < 1 or not graph.is_valid_path(list(path)):
        raise GraphError(f"not a valid path on {graph.name!r}: {list(path)!r}")
    evaluation = RouteEvaluation(path=list(path))
    for u, v in zip(path, path[1:]):
        distance = graph.edge_cost(u, v)
        attributes = road_map.segment_attributes(u, v)
        speed = effective_speed(attributes)
        minutes = 60.0 * distance / speed if speed > 0 else float("inf")
        evaluation.segments.append(
            SegmentEvaluation(
                source=u,
                target=v,
                distance_miles=distance,
                road_type=attributes.road_type,
                speed_mph=attributes.speed_mph,
                effective_speed_mph=speed,
                travel_time_minutes=minutes,
                occupancy=attributes.occupancy,
            )
        )
    return evaluation


def travel_time_graph(road_map: MinneapolisMap) -> Graph:
    """Re-cost the map in minutes of travel time (dynamic ATIS costs).

    The paper's experiments "used only the distance between edges as
    the edge cost" but motivate travel-time routing throughout; this
    derives the travel-time graph the introduction calls for. Planners
    run on it unchanged. Estimators must scale geometric distance by
    minutes-per-mile at the fastest speed to stay admissible —
    :func:`admissible_time_scale` computes that factor.
    """
    timed = Graph(name=f"{road_map.graph.name}-minutes")
    for node in road_map.graph.nodes():
        timed.add_node(node.node_id, node.x, node.y)
    for edge in road_map.graph.edges():
        attributes = road_map.segment_attributes(edge.source, edge.target)
        speed = effective_speed(attributes)
        minutes = 60.0 * edge.cost / speed if speed > 0 else float("inf")
        timed.add_edge(edge.source, edge.target, minutes)
    return timed


def admissible_time_scale(road_map: MinneapolisMap) -> float:
    """Minutes per mile at the fastest effective speed on the map."""
    fastest = max(
        (effective_speed(a) for a in road_map.attributes.values()),
        default=0.0,
    )
    if fastest <= 0:
        raise GraphError("road map has no drivable segments")
    return 60.0 / fastest


def compare_routes(
    road_map: MinneapolisMap, routes: Iterable[Sequence[NodeId]]
) -> List[Tuple[RouteEvaluation, float]]:
    """Evaluate several routes and rank them by travel time.

    Returns ``(evaluation, total_minutes)`` pairs, fastest first.
    """
    evaluated = [evaluate_route(road_map, route) for route in routes]
    ranked = sorted(evaluated, key=lambda e: e.total_time_minutes)
    return [(e, e.total_time_minutes) for e in ranked]
