"""LRU query-result cache for the route-serving layer.

The paper's experiments run one isolated query at a time, so nothing in
the original system ever reuses an answer. A deployed ATIS answers the
same commute questions over and over between traffic updates, which is
exactly the regime Wu et al.'s experimental evaluation of road-network
serving identifies as cache-dominated. This module supplies the missing
piece: a bounded LRU keyed on everything that determines the answer —

    (graph fingerprint, source, destination, algorithm, estimator, weight)

The graph fingerprint is ``Graph.fingerprint`` — a ``(uid, version)``
pair whose version component is bumped by every edge-cost refresh — so
a traffic update can never serve a stale route even if the caller
forgets to invalidate explicitly. Explicit invalidation
(:meth:`RouteCache.invalidate_graph`) exists anyway to evict the dead
entries and keep the LRU budget for live answers.

The cache sits entirely *above* the planners and the storage engine:
paper-mode I/O accounting is untouched, and a hit performs zero block
reads or writes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Hashable, Optional, Tuple

from repro.graphs.graph import Graph, NodeId

#: Everything that determines a query's answer.
QueryKey = Tuple[Tuple[int, int], NodeId, NodeId, str, str, float]


def query_key(
    graph: Graph,
    source: NodeId,
    destination: NodeId,
    algorithm: str,
    estimator: str,
    weight: float,
) -> QueryKey:
    """Build the canonical cache key for one query."""
    return (graph.fingerprint, source, destination, algorithm, estimator, weight)


class RouteCache:
    """Thread-safe bounded LRU of computed route results.

    ``capacity <= 0`` disables caching entirely (every lookup misses and
    nothing is stored), mirroring the storage engine's ``capacity=0``
    pass-through buffer-pool semantics.
    """

    def __init__(self, capacity: int = 1024) -> None:
        self.capacity = int(capacity)
        self._entries: "OrderedDict[QueryKey, object]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: QueryKey) -> Optional[object]:
        """Return the cached result for ``key`` (refreshing recency) or None."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            return None

    def put(self, key: QueryKey, result: object) -> None:
        """Store a result, evicting the least recently used on overflow."""
        if self.capacity <= 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = result
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate_graph(self, graph: Graph) -> int:
        """Drop every entry computed against any version of ``graph``.

        Returns the number of entries evicted. Entries for older
        versions of the graph can no longer be hit (the fingerprint in
        new keys differs) but still occupy LRU slots; traffic updates
        call this to reclaim them immediately.
        """
        with self._lock:
            stale = [
                key for key in self._entries if key[0][0] == graph.uid
            ]
            for key in stale:
                del self._entries[key]
            self.invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        """Drop everything (counters are kept)."""
        with self._lock:
            self.invalidations += len(self._entries)
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def snapshot(self) -> Dict[str, float]:
        """Plain-dict counter view, shaped like ``IOStatistics.snapshot()``."""
        with self._lock:
            size = len(self._entries)
        return {
            "capacity": self.capacity,
            "size": size,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:
        return (
            f"RouteCache(size={len(self)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
