"""Concurrent update-vs-skim races: single-epoch matrix guarantees.

Epochs flip every edge of a chain between 1.0 and 10.0 while readers
skim. Under single-epoch pricing every cell of one matrix is
``hops * k`` for the *same* ``k``; a matrix assembled across an epoch
boundary would mix the two unit costs and price some multi-hop cell
off the pure ladder — which the asserts below would catch.
"""

import math
import threading

import pytest

from repro.demand import skim
from repro.graphs.graph import Graph
from repro.service import RouteService
from repro.traffic import TrafficFeed

pytestmark = pytest.mark.demand

_N = 4  # chain 0 -> 1 -> 2 -> 3


def chain_graph(cost: float) -> Graph:
    graph = Graph(name="chain")
    for index in range(_N):
        graph.add_node(index, index, 0)
    for index in range(_N - 1):
        graph.add_edge(index, index + 1, cost)
    return graph


def single_epoch_faults(matrix):
    """Complaints if the matrix is not priced on one pure epoch.

    The unit cost ``k`` is inferred from the one-hop cell (0, 1) —
    a single edge read is atomic, so it is always pure — and every
    other cell must then be exactly ``hops * k`` (or ``inf`` for the
    backward, unreachable pairs).
    """
    k = matrix.cost(0, 1)
    faults = []
    if k not in (1.0, 10.0):
        faults.append(f"impossible unit cost {k}")
        return faults
    for o in matrix.origins:
        for d in matrix.destinations:
            got = matrix.cost(o, d)
            want = (d - o) * k if d >= o else math.inf
            if got != want:
                faults.append(
                    f"cell ({o},{d}) = {got}, want {want} at k={k}"
                )
    return faults


class TestSkimEpochRaces:
    def test_kernel_skim_never_returns_a_mixed_epoch_matrix(self):
        graph = chain_graph(1.0)
        feed = TrafficFeed(graph)
        complaints = []
        lock = threading.Lock()
        stop = threading.Event()

        def updater():
            flip = True
            while not stop.is_set():
                cost = 10.0 if flip else 1.0
                feed.apply([(i, i + 1, cost) for i in range(_N - 1)])
                flip = not flip

        def reader():
            for _ in range(120):
                matrix = skim(graph, list(range(_N)))
                faults = single_epoch_faults(matrix)
                if faults:
                    with lock:
                        complaints.extend(faults)

        update_thread = threading.Thread(target=updater)
        readers = [threading.Thread(target=reader) for _ in range(3)]
        update_thread.start()
        try:
            for thread in readers:
                thread.start()
            for thread in readers:
                thread.join()
        finally:
            stop.set()
            update_thread.join()
        assert complaints == [], complaints[:5]

    def test_kernel_skim_dict_tier_races_clean_too(self):
        graph = chain_graph(1.0)
        feed = TrafficFeed(graph)
        complaints = []
        stop = threading.Event()

        def updater():
            flip = True
            while not stop.is_set():
                cost = 10.0 if flip else 1.0
                feed.apply([(i, i + 1, cost) for i in range(_N - 1)])
                flip = not flip

        update_thread = threading.Thread(target=updater)
        update_thread.start()
        try:
            for _ in range(150):
                matrix = skim(graph, list(range(_N)), tier="dict")
                complaints.extend(single_epoch_faults(matrix))
        finally:
            stop.set()
            update_thread.join()
        assert complaints == [], complaints[:5]

    def test_service_skim_races_epochs_without_stale_or_mixed_serves(self):
        """The cached path adds a second hazard: a matrix computed at
        epoch N must never be *served* once the subscriber has dropped
        it for epoch N+1 under a changed fingerprint. Each answer must
        be pure AND carry a fingerprint its costs actually match."""
        graph = chain_graph(1.0)
        service = RouteService(default_algorithm="dijkstra")
        feed = TrafficFeed(graph)
        feed.subscribe(service)
        complaints = []
        lock = threading.Lock()
        stop = threading.Event()

        def updater():
            flip = True
            while not stop.is_set():
                cost = 10.0 if flip else 1.0
                feed.apply([(i, i + 1, cost) for i in range(_N - 1)])
                flip = not flip

        def reader():
            for _ in range(100):
                matrix = service.skim(graph, list(range(_N)))
                faults = single_epoch_faults(matrix)
                if faults:
                    with lock:
                        complaints.extend(faults)

        update_thread = threading.Thread(target=updater)
        readers = [threading.Thread(target=reader) for _ in range(3)]
        update_thread.start()
        try:
            for thread in readers:
                thread.start()
            for thread in readers:
                thread.join()
        finally:
            stop.set()
            update_thread.join()
        assert complaints == [], complaints[:5]
        snap = service.snapshot()
        assert snap["skims_computed"] >= 1

    def test_quiesced_skim_matches_fingerprint_and_retries_are_counted(self):
        """After the updater stops, one more skim must agree cell for
        cell with the settled graph and carry its live fingerprint."""
        graph = chain_graph(1.0)
        feed = TrafficFeed(graph)
        feed.apply([(i, i + 1, 10.0) for i in range(_N - 1)])
        matrix = skim(graph, list(range(_N)))
        assert matrix.fingerprint == graph.fingerprint
        assert matrix.retries == 0
        assert single_epoch_faults(matrix) == []
        assert matrix.cost(0, _N - 1) == 10.0 * (_N - 1)
