"""Deterministic fault schedules.

A :class:`FaultPlan` is the *policy* half of fault injection: given a
seed and per-kind rates, it decides — one cheap RNG draw per storage
operation, under a lock, against a monotonically increasing operation
counter — whether that operation faults and how. The decisions depend
only on ``(seed, op_index, site kind)``, never on wall-clock time or
thread identity, so two runs that issue the same operation sequence see
the *same* fault schedule (the determinism tier's contract).

The plan also records every decision it makes (`schedule`) so tests can
assert two runs faulted at identical points, and exposes ``is_noop`` so
a rate-0 plan can short-circuit to exactly the seed code path.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import List, Tuple

#: One recorded decision: (operation index, site label, fault kind).
#: Kind is one of "read-error", "write-error", "torn-page", "latency",
#: "crash".
ScheduleEntry = Tuple[int, str, str]


@dataclass
class FaultPlan:
    """Seedable fault policy shared by every injector site.

    Rates are independent per-operation probabilities in ``[0, 1]``.
    They are plain mutable attributes on purpose: chaos tests warm a
    service up fault-free, then raise a rate mid-run to target a single
    phase. ``latency_units`` is the stall charged (via
    :meth:`IOStatistics.charge_latency`) when a latency fault fires.
    """

    seed: int = 0
    read_error_rate: float = 0.0
    write_error_rate: float = 0.0
    torn_page_rate: float = 0.0
    latency_rate: float = 0.0
    latency_units: float = 0.25
    #: Operation index at which the injector raises
    #: :class:`~repro.exceptions.SimulatedCrash` (the kill-at-op-N
    #: knob of the crash matrix). -1 disarms. Unlike the rates, a
    #: crash is not a random draw: the matrix sweeps it exhaustively,
    #: so it must hit exactly the chosen operation.
    crash_at_op: int = -1

    op_index: int = field(default=0, init=False, repr=False)
    schedule: List[ScheduleEntry] = field(default_factory=list, init=False, repr=False)

    def __post_init__(self) -> None:
        for name in (
            "read_error_rate",
            "write_error_rate",
            "torn_page_rate",
            "latency_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        if self.latency_units < 0:
            raise ValueError("latency_units must be non-negative")
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def is_noop(self) -> bool:
        """True when no fault can ever fire (all rates zero).

        The injector checks this on every operation so a rate-0 plan
        never draws from the RNG, never takes the lock on the schedule,
        and leaves costs byte-identical to a run with no injector.
        """
        return (
            self.read_error_rate == 0.0
            and self.write_error_rate == 0.0
            and self.torn_page_rate == 0.0
            and self.latency_rate == 0.0
            and self.crash_at_op < 0
        )

    def decide(self, site: str, kind: str) -> str:
        """Draw one decision for a storage operation.

        ``kind`` is "read" or "write" (the operation's nature, which
        selects the applicable rates). Returns "" for no fault, or one
        of "read-error" / "write-error" / "torn-page" / "latency".
        Torn pages only apply to reads (a torn *write* surfaces on the
        next read in a real system; modelling it at read time keeps the
        failure observable).
        """
        with self._lock:
            index = self.op_index
            self.op_index += 1
            if index == self.crash_at_op:
                # The kill point pre-empts any rate draw: the process
                # dies here, so the RNG stream beyond this op is moot.
                self.schedule.append((index, site, "crash"))
                return "crash"
            draw = self._rng.random()
            fault = ""
            if kind == "read":
                if draw < self.read_error_rate:
                    fault = "read-error"
                elif draw < self.read_error_rate + self.torn_page_rate:
                    fault = "torn-page"
                elif draw < (
                    self.read_error_rate + self.torn_page_rate + self.latency_rate
                ):
                    fault = "latency"
            else:
                if draw < self.write_error_rate:
                    fault = "write-error"
                elif draw < self.write_error_rate + self.latency_rate:
                    fault = "latency"
            if fault:
                self.schedule.append((index, site, fault))
            return fault

    def check_crash(self, site: str) -> bool:
        """Consume one op index, firing only the crash fault.

        Used at WAL commit sites: a log append must be killable (the
        classic apply-then-crash-before-commit window) but must never
        draw a transient fault — a retried append would journal the
        same operation twice. No RNG draw happens, so attaching a WAL
        does not shift the rate schedule of the other sites.
        """
        with self._lock:
            index = self.op_index
            self.op_index += 1
            if index == self.crash_at_op:
                self.schedule.append((index, site, "crash"))
                return True
            return False

    def schedule_digest(self) -> int:
        """Stable CRC32 over the recorded schedule, for equality tests."""
        import zlib

        return zlib.crc32(repr(self.schedule).encode("utf-8"))

    def reset(self) -> None:
        """Rewind to the initial state: same seed ⇒ same schedule again."""
        self._rng = random.Random(self.seed)
        self.op_index = 0
        self.schedule.clear()
