"""Best-first A* search — Figure 3 of the paper.

The representative of the *single-pair* class: each iteration selects
the frontier node minimising ``C(s,u) + f(u,d)`` where ``f`` is an
estimator of the remaining cost. With an admissible (never
overestimating) estimator the first selection of the destination yields
the optimal path (Lemma 3). The estimator focuses expansion towards the
destination, which is what lets A* terminate after a handful of
iterations on short or skew-favoured queries (Tables 6-8).

Two fidelity details from the paper's pseudo-code are preserved by the
kernel's heap frontier policy:

* the duplicate test is against the **frontier only** (``not_in(v,
  frontierSet)``) — an already-explored node whose label improves is
  re-inserted (*reopened*). With a consistent estimator this never
  happens; with an inadmissible one (manhattan on the Minneapolis map)
  it both happens and still fails to guarantee optimality, which the
  experiments measure as the optimality gap;
* ties on ``g + h`` are broken towards the node with the smaller
  estimate ``h`` (deepest progress towards the goal), then FIFO. This
  keeps uniform-cost grids cheap for A* — the behaviour behind the
  paper's Table 7 uniform-vs-variance contrast.

``astar_search`` is a thin configuration of :mod:`repro.kernel`: the
heap frontier policy plus an estimator, on the in-memory backend.
"""

from __future__ import annotations

import heapq
from typing import Dict, Optional

from repro.exceptions import NodeNotFoundError
from repro.graphs.graph import Graph, NodeId
from repro.core.estimators import Estimator, ZeroEstimator
from repro.core.result import PathResult, SearchStats, reconstruct_path
from repro.kernel import search


def astar_search(
    graph: Graph,
    source: NodeId,
    destination: NodeId,
    estimator: Optional[Estimator] = None,
    max_iterations: Optional[int] = None,
) -> PathResult:
    """Find a path from ``source`` to ``destination`` guided by ``estimator``.

    With an admissible estimator (zero, euclidean on distance-cost
    graphs, manhattan on uniform grids) the returned path is optimal.
    With an inadmissible estimator the path is a *good* path found
    quickly but possibly sub-optimal — the ATIS speed/optimality
    trade-off the paper closes on.

    ``max_iterations`` guards against pathological reopening cascades;
    the default allows |N|^2 expansions, far beyond anything the
    benchmark graphs trigger.
    """
    estimator = estimator if estimator is not None else ZeroEstimator()
    return search(
        graph,
        source,
        destination,
        algorithm="astar",
        estimator=estimator,
        max_iterations=max_iterations,
    )


def greedy_best_first_search(
    graph: Graph,
    source: NodeId,
    destination: NodeId,
    estimator: Estimator,
) -> PathResult:
    """Pure greedy best-first: select by ``f(u, d)`` alone, ignore g.

    Included as the degenerate end of the speed/optimality spectrum —
    it finds *a* path extremely fast but with no quality bound, a useful
    baseline when the experiments quantify the trade-off the paper
    leaves as future work. Not a kernel configuration: it keeps no cost
    labels, so it falls outside the label-correcting protocol.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    if destination not in graph:
        raise NodeNotFoundError(destination)

    estimator.prepare(graph, destination)
    stats = SearchStats()
    predecessor: Dict[NodeId, NodeId] = {}
    visited = {source}
    counter = 0
    heap = [(estimator.estimate(graph, source, destination), counter, source)]
    stats.frontier_inserts += 1
    found = False

    while heap:
        _, _, u = heapq.heappop(heap)
        if u == destination:
            found = True
            break
        stats.iterations += 1
        stats.nodes_expanded += 1
        stats.observe_frontier(len(heap))
        for v, _cost in graph.neighbors(u):
            stats.edges_relaxed += 1
            if v not in visited:
                visited.add(v)
                predecessor[v] = u
                counter += 1
                heapq.heappush(
                    heap, (estimator.estimate(graph, v, destination), counter, v)
                )
                stats.frontier_inserts += 1

    result = PathResult(
        source=source,
        destination=destination,
        algorithm="greedy",
        estimator=estimator.name,
        stats=stats,
    )
    if found:
        path = reconstruct_path(predecessor, source, destination)
        assert path is not None
        result.path = path
        result.cost = graph.path_cost(path)
        result.found = True
    return result
