"""End-to-end tests for RouteService: caching, dedup, invalidation,
metrics, tracing, the relational-engine tier and the CLI entry point."""

import threading

import pytest

from repro.core.dijkstra import dijkstra_search
from repro.core.planner import RoutePlanner
from repro.engine import RelationalGraph
from repro.graphs.grid import make_grid, make_paper_grid
from repro.service import RouteService

pytestmark = pytest.mark.service


@pytest.fixture
def service() -> RouteService:
    return RouteService()


@pytest.fixture
def grid() -> "Graph":
    return make_paper_grid(10, "variance")


class TestCorrectness:
    @pytest.mark.parametrize("algorithm", ["astar", "dijkstra", "bidirectional"])
    def test_matches_direct_planner(self, service, grid, algorithm):
        served = service.plan(grid, (0, 0), (9, 9), algorithm=algorithm)
        direct = RoutePlanner().plan(grid, (0, 0), (9, 9), algorithm)
        assert served.found
        assert served.cost == pytest.approx(direct.cost)

    def test_warm_hit_returns_same_answer(self, service, grid):
        cold = service.plan(grid, (0, 0), (9, 9))
        warm = service.plan(grid, (0, 0), (9, 9))
        assert warm.cost == pytest.approx(cold.cost)
        assert warm.path == cold.path
        assert service.metrics.cache_hits == 1
        assert service.metrics.cache_misses == 1

    def test_returned_path_is_caller_owned(self, service, grid):
        first = service.plan(grid, (0, 0), (9, 9))
        first.path.clear()
        second = service.plan(grid, (0, 0), (9, 9))
        assert second.path, "mutating a returned result corrupted the cache"

    def test_distinct_estimators_cached_separately(self, service, grid):
        service.plan(grid, (0, 0), (9, 9), estimator="euclidean")
        service.plan(grid, (0, 0), (9, 9), estimator="zero")
        assert service.metrics.cache_misses == 2

    def test_weight_part_of_cache_key(self, service, grid):
        service.plan(grid, (0, 0), (9, 9), weight=1.0)
        service.plan(grid, (0, 0), (9, 9), weight=2.0)
        assert service.metrics.cache_misses == 2

    def test_pooled_landmark_service_is_optimal(self, grid):
        service = RouteService(default_estimator="landmark")
        optimum = dijkstra_search(grid, (0, 0), (9, 9)).cost
        for _ in range(2):
            result = service.plan(grid, (0, 0), (9, 9))
            assert result.cost == pytest.approx(optimum)
        assert service.pool.created == 1


class TestInvalidation:
    def test_edge_update_forces_recomputation_with_new_cost(self, service):
        graph = make_grid(5)
        before = service.plan(graph, (0, 0), (0, 4), algorithm="dijkstra",
                              estimator="zero")
        assert before.cost == pytest.approx(4.0)
        # Congest every eastbound edge of the top row: the straight
        # route now costs 4 * 10; the detour through row 1 wins.
        for column in range(4):
            service.update_edge_cost(graph, (0, column), (0, column + 1), 10.0)
        after = service.plan(graph, (0, 0), (0, 4), algorithm="dijkstra",
                             estimator="zero")
        assert after.cost == pytest.approx(
            dijkstra_search(graph, (0, 0), (0, 4)).cost
        )
        assert after.cost != pytest.approx(before.cost)
        assert service.cache.invalidations >= 1

    def test_stale_hit_impossible_even_without_explicit_invalidation(
        self, service
    ):
        graph = make_grid(5)
        service.plan(graph, (0, 0), (0, 4))
        graph.update_edge_cost((0, 0), (0, 1), 10.0)  # bypasses the service
        replay = service.plan(graph, (0, 0), (0, 4))
        assert replay.cost == pytest.approx(
            dijkstra_search(graph, (0, 0), (0, 4)).cost
        )


class TestBatchAndDedup:
    def test_plan_many_aligns_results(self, service, grid):
        queries = [((0, 0), (9, 9)), ((0, 0), (5, 5)), ((0, 0), (9, 9))]
        results = service.plan_many(grid, queries)
        assert len(results) == 3
        assert results[0].cost == pytest.approx(results[2].cost)
        assert results[1].destination == (5, 5)
        assert service.metrics.deduplicated == 1

    def test_plan_many_dict_specs(self, service, grid):
        results = service.plan_many(
            grid,
            [
                {"source": (0, 0), "destination": (9, 9), "algorithm": "dijkstra"},
                {"source": (0, 0), "destination": (9, 9), "estimator": "zero"},
            ],
        )
        assert all(result.found for result in results)
        # Different algorithm/estimator -> different keys -> no dedup.
        assert service.metrics.deduplicated == 0

    def test_concurrent_identical_queries_compute_once(self, grid):
        service = RouteService()
        compute_count = {"n": 0}
        gate = threading.Event()
        inner = service.planner._registry["astar"]

        def slow_astar(graph, source, destination, estimator):
            compute_count["n"] += 1
            gate.wait(timeout=5)
            return inner(graph, source, destination, estimator)

        service.planner.register("astar", slow_astar)
        results = []

        def worker():
            results.append(service.plan(grid, (0, 0), (9, 9)))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        gate.set()
        for thread in threads:
            thread.join(timeout=10)
        assert len(results) == 6
        assert len({result.cost for result in results}) == 1
        assert compute_count["n"] == 1, "identical in-flight queries not deduplicated"
        assert service.metrics.queries == 6


class TestEngineTier:
    def test_warm_hit_performs_zero_block_io(self, grid):
        service = RouteService()
        rgraph = RelationalGraph(grid)
        cold = service.plan_engine(rgraph, (0, 0), (9, 9), algorithm="dijkstra")
        before = rgraph.stats.snapshot()
        warm = service.plan_engine(rgraph, (0, 0), (9, 9), algorithm="dijkstra")
        after = rgraph.stats.snapshot()
        assert warm.cost == pytest.approx(cold.cost)
        assert after["block_reads"] == before["block_reads"]
        assert after["block_writes"] == before["block_writes"]
        assert after == before

    def test_astar_versions_served(self, grid):
        service = RouteService()
        rgraph = RelationalGraph(grid)
        run = service.plan_engine(rgraph, (0, 0), (9, 9), version="v1")
        assert run.found
        assert grid.is_valid_path(run.path)

    def test_unknown_engine_algorithm_rejected(self, grid):
        service = RouteService()
        rgraph = RelationalGraph(grid)
        with pytest.raises(ValueError):
            service.plan_engine(rgraph, (0, 0), (9, 9), algorithm="greedy")


class TestRelationalBackendKnob:
    @pytest.mark.parametrize("algorithm", ["astar", "dijkstra", "iterative"])
    def test_matches_memory_backend(self, service, grid, algorithm):
        relational = service.plan(
            grid, (0, 0), (9, 9), algorithm=algorithm, backend="relational"
        )
        memory = service.plan(grid, (0, 0), (9, 9), algorithm=algorithm)
        assert relational.found
        assert relational.cost == pytest.approx(memory.cost)
        assert relational.io is not None
        assert relational.execution_cost > 0
        assert memory.io is None

    def test_warm_hit_performs_zero_block_io(self, service, grid):
        cold = service.plan(grid, (0, 0), (9, 9), backend="relational")
        rgraph = service._rgraphs[grid.uid]
        before = rgraph.stats.snapshot()
        warm = service.plan(grid, (0, 0), (9, 9), backend="relational")
        assert rgraph.stats.snapshot() == before
        assert warm.cost == pytest.approx(cold.cost)
        assert service.metrics.cache_hits == 1

    def test_tiers_do_not_alias_in_the_cache(self, service, grid):
        service.plan(grid, (0, 0), (9, 9), algorithm="dijkstra")
        relational = service.plan(
            grid, (0, 0), (9, 9), algorithm="dijkstra", backend="relational"
        )
        # The second query must be a cold relational run, not a warm
        # in-memory hit with no I/O ledger.
        assert service.metrics.cache_hits == 0
        assert relational.io is not None

    def test_epoch_invalidation_and_sync_billing(self, grid):
        from repro.traffic.feed import TrafficFeed

        service = RouteService()
        feed = TrafficFeed(grid)
        feed.subscribe(service.handle_epoch)
        first = service.plan(grid, (0, 0), (9, 9), backend="relational")
        assert first.sync_cost == 0.0
        edge = (first.path[0], first.path[1])
        feed.apply([(edge[0], edge[1], grid.edge_cost(*edge) + 50.0)])
        replanned = service.plan(grid, (0, 0), (9, 9), backend="relational")
        # The touched edge lay on the cached route: the entry was
        # evicted, the mirror re-fetched the dirtied adjacency blocks
        # (billed as sync), and the new route avoids the repriced edge.
        assert service.metrics.cache_hits == 0
        assert replanned.sync_cost > 0
        assert edge not in set(zip(replanned.path, replanned.path[1:]))

    def test_update_edge_cost_reaches_the_mirror(self, service, grid):
        first = service.plan(grid, (0, 0), (9, 9), backend="relational")
        edge = (first.path[0], first.path[1])
        service.update_edge_cost(grid, edge[0], edge[1], 99.0)
        replanned = service.plan(grid, (0, 0), (9, 9), backend="relational")
        assert replanned.sync_cost > 0
        assert replanned.cost == pytest.approx(
            service.plan(grid, (0, 0), (9, 9), algorithm="dijkstra").cost
        )

    def test_plan_many_accepts_backend_key(self, service, grid):
        results = service.plan_many(
            grid,
            [
                {"source": (0, 0), "destination": (9, 9),
                 "backend": "relational", "algorithm": "dijkstra"},
                {"source": (0, 0), "destination": (9, 9),
                 "algorithm": "dijkstra"},
            ],
        )
        assert results[0].io is not None
        assert results[1].io is None
        assert results[0].cost == pytest.approx(results[1].cost)

    def test_unknown_backend_rejected(self, service, grid):
        with pytest.raises(ValueError):
            service.plan(grid, (0, 0), (9, 9), backend="quantum")
        with pytest.raises(ValueError):
            RouteService(default_backend="quantum")

    def test_relational_unknown_algorithm_rejected(self, service, grid):
        from repro.exceptions import UnknownAlgorithmError

        with pytest.raises(UnknownAlgorithmError):
            service.plan(grid, (0, 0), (9, 9), algorithm="greedy",
                         backend="relational")


class TestObservability:
    def test_snapshot_shape_matches_iostatistics_style(self, service, grid):
        service.plan(grid, (0, 0), (9, 9))
        snap = service.snapshot()
        assert all(isinstance(value, (int, float)) for value in snap.values())
        for required in (
            "queries", "cache_hits", "cache_misses", "cache_hit_rate",
            "average_latency_s", "nodes_expanded", "cache_size",
            "pool_created",
        ):
            assert required in snap

    def test_snapshot_leaves_are_numeric_and_json_safe(self, service, grid):
        """The ``Snapshot`` contract the fleet nests per shard: every
        leaf is a real number (bools are ints in Python — excluded
        explicitly) and the dict survives a JSON round trip verbatim."""
        import json

        service.plan(grid, (0, 0), (9, 9))
        snap = service.snapshot()
        for name, value in snap.items():
            assert isinstance(value, (int, float)), name
            assert not isinstance(value, bool), name
        assert json.loads(json.dumps(snap)) == snap

    def test_trace_spans_recorded(self, service, grid):
        service.plan(grid, (0, 0), (9, 9))
        names = [span.name for span in service.last_trace.spans]
        assert names == ["cache-lookup", "plan", "cache-store"]
        service.plan(grid, (0, 0), (9, 9))
        names = [span.name for span in service.last_trace.spans]
        assert names == ["cache-lookup"]
        assert service.metrics.recent[-1].spans["cache-lookup"] >= 0.0

    def test_request_trace_durations(self):
        from repro.engine.tracing import RequestTrace

        ticks = iter(range(100))
        trace = RequestTrace(clock=lambda: next(ticks))
        with trace.span("a"):
            pass
        with trace.span("b", detail=1) as span:
            span.annotate(more=2)
        assert trace.durations()["a"] >= 1
        payload = trace.to_dict()
        assert payload["spans"][1]["detail"] == 1
        assert payload["spans"][1]["more"] == 2


class TestCli:
    def test_bench_service_smoke(self, capsys):
        from repro.cli import main

        code = main(
            ["bench-service", "--graph", "grid:8:uniform",
             "--queries", "10", "--seed", "7"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cold pass" in out
        assert "warm pass" in out
        assert "cache_hit_rate" in out
