"""repro.demand — batch OD workloads over the fastpath tiers.

The many-to-many workload class from ROADMAP item 4, in three layers
that feed each other:

* :mod:`repro.demand.skim` — dense OD cost matrices from one
  one-to-all SSSP per distinct origin (:func:`skim`), single-epoch
  guaranteed, with optional path-tree retention;
* :mod:`repro.demand.selectlink` — which OD pairs traverse a link and
  the volume they put on it (:func:`select_link` over retained trees,
  or the route cache's inverted edge index via
  ``RouteService.select_link``), both shapes through one
  :func:`link_flows` inversion;
* :mod:`repro.demand.assignment` — iterative MSA / Frank-Wolfe user
  equilibrium (:func:`assign`) that prices BPR congestion through
  :class:`~repro.traffic.feed.TrafficFeed` epochs and iterates to a
  relative-gap criterion.

Everything is auditable against the independent dict-tier Dijkstra
loops — `atis-repro bench-demand` runs the full harness and refuses
to emit a report that is not bit-exact and converged.
"""

from __future__ import annotations

from repro.demand.assignment import (
    ASSIGNMENT_METHODS,
    AssignmentIteration,
    AssignmentResult,
    BPRParams,
    assign,
)
from repro.demand.selectlink import (
    LinkFlow,
    SelectLinkResult,
    link_flows,
    select_link,
)
from repro.demand.skim import SKIM_TIERS, SkimMatrix, skim

__all__ = [
    "ASSIGNMENT_METHODS",
    "AssignmentIteration",
    "AssignmentResult",
    "BPRParams",
    "LinkFlow",
    "SKIM_TIERS",
    "SelectLinkResult",
    "SkimMatrix",
    "assign",
    "link_flows",
    "select_link",
    "skim",
]
