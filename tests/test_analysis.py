"""Tests for the graph analysis helpers."""

import math

import pytest

from repro.exceptions import NodeNotFoundError
from repro.graphs.analysis import (
    cost_radius,
    degree_statistics,
    hop_diameter,
    hop_eccentricity,
    is_strongly_connected,
    path_length_ratio,
    reachable_from,
    weakly_connected_components,
)
from repro.graphs.graph import Graph
from repro.graphs.grid import make_grid


class TestDegree:
    def test_grid_degrees(self):
        stats = degree_statistics(make_grid(5))
        assert stats.minimum == 2  # corners
        assert stats.maximum == 4  # interior
        histogram = dict(stats.histogram)
        assert histogram[2] == 4  # four corners
        assert histogram[3] == 12  # edge nodes

    def test_empty_graph(self):
        stats = degree_statistics(Graph())
        assert stats.average == 0.0
        assert stats.histogram == ()


class TestReachability:
    def test_reachable_from(self, tiny_graph):
        assert reachable_from(tiny_graph, "a") == {"a", "b", "c", "d", "e"}
        assert reachable_from(tiny_graph, "e") == {"e"}

    def test_missing_source(self, tiny_graph):
        with pytest.raises(NodeNotFoundError):
            reachable_from(tiny_graph, "q")

    def test_strong_connectivity(self, tiny_graph):
        assert not is_strongly_connected(tiny_graph)  # edges one-way
        assert is_strongly_connected(make_grid(4))  # undirected grid
        assert is_strongly_connected(Graph())  # vacuously

    def test_weak_components(self, disconnected_graph):
        components = weakly_connected_components(disconnected_graph)
        assert len(components) == 2
        assert components[0] == {"a", "b"}  # largest first
        assert components[1] == {"z"}


class TestDiameter:
    def test_grid_hop_diameter(self):
        assert hop_diameter(make_grid(5)) == 8  # 2 * (k - 1)

    def test_eccentricity_from_corner(self):
        assert hop_eccentricity(make_grid(5), (0, 0)) == 8

    def test_eccentricity_from_center(self):
        assert hop_eccentricity(make_grid(5), (2, 2)) == 4

    def test_sampled_diameter_is_lower_bound(self):
        graph = make_grid(8)
        assert hop_diameter(graph, sample=4) <= hop_diameter(graph)

    def test_empty_graph_diameter(self):
        assert hop_diameter(Graph()) == 0


class TestCostAndRatio:
    def test_cost_radius_uniform_grid(self):
        assert cost_radius(make_grid(5), (0, 0)) == pytest.approx(8.0)

    def test_path_length_ratio_bounds(self):
        graph = make_grid(6)
        near = path_length_ratio(graph, (0, 0), (0, 1))
        far = path_length_ratio(graph, (0, 0), (5, 5))
        assert 0 < near < far <= 1.0

    def test_unreachable_gives_nan(self, disconnected_graph):
        assert math.isnan(path_length_ratio(disconnected_graph, "a", "z"))
