"""The pinned fleet benchmark: sharded serving under skewed load.

One :class:`FleetBenchConfig` names one exact workload — a seeded
paper grid, a set of shard layouts, and a seeded Zipf OD stream with
inter-round traffic epochs. For every layout in
:data:`EXPECTED_LAYOUTS` the bench partitions the same graph state,
stands up a fleet, replays the stream concurrently through
:func:`repro.fleet.loadgen.run_fleet_load`, and keeps the full
per-layout report: throughput, p50/p99 latency, per-shard SLO
snapshots, and — the part that makes the number trustworthy — the
exactness audit against whole-graph Dijkstra.

Emission follows the PR 6 convention shared with
``bench_wallclock``/``bench_planners``: :meth:`FleetBenchReport.to_json`
refuses a report that is missing any expected layout or whose audit
found inexact answers, so an interrupted or broken run can never
overwrite a complete ``BENCH_fleet.json`` with a partial one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fleet.loadgen import FleetLoadConfig, FleetLoadReport, run_fleet_load
from repro.fleet.partition import parse_layout, partition_graph
from repro.fleet.router import FleetRouter
from repro.graphs.graph import Graph
from repro.graphs.grid import make_paper_grid
from repro.traffic.feed import TrafficFeed

#: Every shard layout a complete report must cover, in report order.
EXPECTED_LAYOUTS: Tuple[str, ...] = ("2x2", "3x3")


@dataclass
class FleetBenchConfig:
    """The pinned fleet workload. Changing any field changes what a
    number means across commits — bump deliberately, never casually."""

    grid: int = 12
    cost_model: str = "variance"
    seed: int = 1993
    layouts: Tuple[str, ...] = EXPECTED_LAYOUTS
    queries: int = 2000
    rounds: int = 4
    concurrency: int = 8
    alpha: float = 1.1
    epoch_edges: int = 32
    max_queue: int = 128
    worker_threads: int = 2

    def load_config(self) -> FleetLoadConfig:
        return FleetLoadConfig(
            queries=self.queries,
            rounds=self.rounds,
            concurrency=self.concurrency,
            alpha=self.alpha,
            seed=self.seed,
            epoch_edges=self.epoch_edges,
        )


@dataclass
class FleetBenchReport:
    """Per-layout load reports over one pinned workload."""

    config: FleetBenchConfig
    runs: Dict[str, FleetLoadReport] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return all(layout in self.runs for layout in self.config.layouts)

    @property
    def missing(self) -> List[str]:
        return [l for l in self.config.layouts if l not in self.runs]

    @property
    def clean(self) -> bool:
        """Every expected layout ran and every run audited clean."""
        return self.complete and all(run.clean for run in self.runs.values())

    @property
    def total_inexact(self) -> int:
        return sum(run.inexact for run in self.runs.values())

    def summary_lines(self) -> List[str]:
        cfg = self.config
        lines = [
            f"workload: grid {cfg.grid}x{cfg.grid} {cfg.cost_model} "
            f"seed={cfg.seed}, {cfg.queries} Zipf(alpha={cfg.alpha}) queries "
            f"x{cfg.concurrency} threads, {cfg.rounds} rounds",
        ]
        for layout in cfg.layouts:
            run = self.runs.get(layout)
            if run is None:
                lines.append(f"{layout:6s} MISSING")
                continue
            lines.append(
                f"{layout:6s} shards={run.shard_count} cut={run.cut_edges:4d}  "
                f"{run.throughput_qps:8.1f} q/s  "
                f"p50 {run.p50_latency_ms:7.3f} ms  "
                f"p99 {run.p99_latency_ms:7.3f} ms  "
                f"cross={run.cross_shard} stitched={run.stitched} "
                f"shed={run.shed} inexact={run.inexact}"
            )
            for sample in run.inexact_samples:
                lines.append(f"       INEXACT {sample}")
        lines.append(
            "audit: clean" if self.clean
            else f"audit: {self.total_inexact} inexact answers"
            + (f", missing layouts: {', '.join(self.missing)}"
               if not self.complete else "")
        )
        return lines

    def to_json(self, indent: int = 2) -> str:
        """Serialize — refusing partial or inexact reports.

        A ``BENCH_fleet.json`` on disk therefore always describes a
        complete run whose every answer matched whole-graph Dijkstra.
        """
        if not self.complete:
            raise ValueError(
                "refusing to serialise a partial fleet report; "
                f"missing layouts: {', '.join(self.missing)}"
            )
        if not self.clean:
            raise ValueError(
                "refusing to serialise a fleet report with "
                f"{self.total_inexact} inexact answers"
            )
        cfg = self.config
        return json.dumps(
            {
                "workload": {
                    "grid": cfg.grid,
                    "cost_model": cfg.cost_model,
                    "seed": cfg.seed,
                    "queries": cfg.queries,
                    "rounds": cfg.rounds,
                    "concurrency": cfg.concurrency,
                    "alpha": cfg.alpha,
                    "epoch_edges": cfg.epoch_edges,
                    "max_queue": cfg.max_queue,
                    "worker_threads": cfg.worker_threads,
                },
                "layouts": {
                    layout: {
                        "summary": {
                            name: (round(value, 6)
                                   if isinstance(value, float) else value)
                            for name, value in
                            self.runs[layout].to_snapshot().items()
                        },
                        "fleet": self.runs[layout].snapshot.get("fleet", {}),
                        "shards": {
                            name: snap
                            for name, snap in self.runs[layout].snapshot.items()
                            if name != "fleet"
                        },
                    }
                    for layout in cfg.layouts
                },
            },
            indent=indent,
        )


def bench_graph(config: FleetBenchConfig) -> Graph:
    """The pinned parent graph (rebuilt fresh per layout run)."""
    return make_paper_grid(config.grid, config.cost_model, seed=config.seed)


def run_layout(config: FleetBenchConfig, layout: str) -> FleetLoadReport:
    """Partition, serve, and audit one layout of the pinned workload.

    Each layout gets a **fresh** graph build so its inter-round epochs
    (same seed, hence same perturbations) start from the identical
    free-flow state — layouts are compared on the same evolving map.
    """
    rows, cols = parse_layout(layout)
    graph = bench_graph(config)
    partition = partition_graph(graph, rows, cols)
    router = FleetRouter(
        partition,
        max_queue=config.max_queue,
        threads=config.worker_threads,
    )
    feed = TrafficFeed(graph)
    feed.subscribe(router)
    try:
        return run_fleet_load(graph, router, feed, config.load_config())
    finally:
        router.shutdown()


def run_fleet_bench(
    config: Optional[FleetBenchConfig] = None,
    layouts: Optional[Tuple[str, ...]] = None,
) -> FleetBenchReport:
    """Run the pinned fleet workload over every requested layout.

    ``layouts`` narrows *which layouts run* without narrowing the
    report's expectations (mirroring ``run_wallclock``'s ``scenarios``
    parameter), so a report built from a subset stays incomplete and
    refuses :meth:`~FleetBenchReport.to_json`. To genuinely change the
    workload, set :attr:`FleetBenchConfig.layouts` instead.
    """
    config = config or FleetBenchConfig()
    report = FleetBenchReport(config=config)
    for layout in (layouts if layouts is not None else config.layouts):
        report.runs[layout] = run_layout(config, layout)
    return report
