"""Full-reproduction report generator.

Runs every registered experiment and emits a markdown report (the
content of EXPERIMENTS.md): per artifact, the measured table beside the
paper's published numbers, plus the qualitative figure claims that were
checked. ``python -m repro.experiments.report [output.md]`` regenerates
it from scratch.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

from repro.experiments.paper_data import FIGURE_CLAIMS
from repro.experiments.spec import all_experiments
from repro.experiments.tables import markdown_table

_HEADER = r"""# EXPERIMENTS — paper vs. measured

Reproduction of every table and figure in *Path Computation Algorithms
for Advanced Traveller Information System (ATIS)* (Shekhar, Kohli,
Coyle; ICDE 1993). All measurements come from the simulated relational
engine (`repro.engine`) with Table 4A cost units; "execution cost"
plays the role of the paper's measured execution time (the paper
itself validated that this cost model predicts its INGRES measurements
within 10%).

Measured cells show `ours (paper)` where the paper printed a number.
Absolute agreement is not expected — the substrate is a simulator, not
the authors' INGRES installation — but every ordering and growth shape
the paper calls out is asserted by the integration test suite
(`tests/test_paper_claims.py`).

Regenerate with: `python -m repro.experiments.report EXPERIMENTS.md`

## Known deviations from the paper, and why

1. **A\*-v3 iterations on uniform grids (Table 7)** — ours 38 vs the
   paper's 189 on the 20x20 diagonal. All rectangle nodes tie at
   f = 2(k-1) under uniform costs + manhattan, so the count is pure
   tie-breaking; our planner breaks f-ties toward the smaller heuristic
   (goal-directed), the paper's QUEL scan picked whatever tuple came
   first. The published *ordering* (uniform <= variance) holds either
   way.
2. **v2-vs-v3 gap at 30x30 (Figure 10)** — the paper reports v3 ~10x
   cheaper than v2; ours are nearly equal. With 20% variance both
   estimators admit nearly every node (f < C* for ~all of the grid),
   so expansions — and therefore cost — coincide; we cannot reproduce a
   10x gap from the estimator switch alone and attribute the paper's
   gap to implementation artifacts in its QUEL programs. v3 <= v2
   everywhere in our data, preserving the directional claim.
3. **Minneapolis diagonals (Table 8)** — our synthetic map reproduces
   the orderings (A->B dearer than C->D; short queries collapse) but
   not the absolute iteration counts, since the real MnDOT geometry is
   unavailable; see DESIGN.md for the substitution argument.
4. **Dijkstra skewed iterations (Table 7)** — ours 92 vs the paper's
   48: how far the cheap corridor pulls Dijkstra depends on the exact
   cheap/normal cost ratio, which the paper does not print (we use
   0.1/1.0). The collapse relative to variance (399 -> 92) reproduces.

## A note on update load (Figures 10-12 under live traffic)

Every execution-cost ordering below — A\* versions vs grid size
(Figure 10), vs path length (Figure 11), and vs cost model (Figure 12)
— is measured on **frozen** edge costs, exactly as the paper did. With
the live-traffic subsystem (`repro.traffic`) active, each relational
run additionally pays a `traffic-sync` charge before searching: the
dirty adjacency lists accumulated since the last run are re-fetched
via hash probe and rewritten in place at Table 4A rates (reported as
`sync_cost` on every run result). That charge depends on the update
workload, not on the algorithm — all of v1/v2/v3, Dijkstra and
iterative pay the same bill for the same backlog — so it shifts every
curve up by a common per-run constant. The asymptotic orderings the
paper claims are therefore unaffected, but *close* calls can flip
under heavy update load: where v2 and v3 run nearly equal (deviation
2 above), or near the v1-vs-v2 crossover at short path lengths in
Figure 11, a sync bill comparable to the search cost itself can
reorder adjacent points. Updates that bypass the feed are worse: they
break the epoch chain and force a full drop-and-reload of S, a cost
on the order of the initial load rather than the touched tuples. The
figures below keep the paper's static-cost protocol; see
`atis-repro bench-traffic` for the update-load measurements.
"""


def generate_report(stream: Optional[TextIO] = None, verbose: bool = True) -> str:
    """Run all experiments and return the markdown report."""
    sections = [_HEADER]
    for spec in all_experiments():
        started = time.time()
        if verbose:
            print(f"running {spec.experiment_id}: {spec.title} ...", file=sys.stderr)
        result = spec.runner()
        elapsed = time.time() - started
        artifact_list = ", ".join(spec.paper_artifacts)
        parts = [f"## {spec.experiment_id} — {spec.title} ({artifact_list})", ""]
        parts.append(result.title)
        parts.append("")
        if result.iterations:
            parts.append("**Iterations** (paper value in parentheses):")
            parts.append("")
            parts.append(
                markdown_table(
                    result.iterations,
                    result.conditions,
                    paper=result.paper_iterations,
                )
            )
            parts.append("")
        if result.execution_cost:
            label = (
                "**Execution cost** (Table 4A units; paper value in "
                "parentheses):"
                if result.paper_costs
                else "**Execution cost** (Table 4A units):"
            )
            parts.append(label)
            parts.append("")
            parts.append(
                markdown_table(
                    result.execution_cost,
                    result.conditions,
                    paper=result.paper_costs,
                )
            )
            parts.append("")
        has_figure = any(
            artifact.startswith("Figure") for artifact in spec.paper_artifacts
        )
        if has_figure and result.execution_cost:
            from repro.experiments.figures import chart_for_result

            parts.append("```")
            parts.append(chart_for_result(result))
            parts.append("```")
            parts.append("")
        for artifact in spec.paper_artifacts:
            claim_key = artifact.lower().replace(" ", "-")
            if claim_key in FIGURE_CLAIMS:
                parts.append(f"*{artifact} claim checked*: {FIGURE_CLAIMS[claim_key]}")
                parts.append("")
        if result.notes:
            parts.append("```")
            parts.append(result.notes)
            parts.append("```")
            parts.append("")
        parts.append(f"_Experiment wall time: {elapsed:.1f}s_")
        sections.append("\n".join(parts))
    report = "\n\n".join(sections) + "\n"
    if stream is not None:
        stream.write(report)
    return report


def main(argv: Optional[list] = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    output_path = argv[0] if argv else None
    report = generate_report(verbose=True)
    if output_path:
        with open(output_path, "w") as handle:
            handle.write(report)
        print(f"wrote {output_path}", file=sys.stderr)
    else:
        print(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
