"""Tokenizer, AST and recursive-descent parser for mini-QUEL.

The grammar (case-insensitive keywords)::

    statement   := range | retrieve | append | replace | delete
    range       := RANGE OF ident IS ident
    retrieve    := RETRIEVE [INTO ident] "(" targets ")" [WHERE qual]
    append      := APPEND TO ident "(" assignments ")"
    replace     := REPLACE ident "(" assignments ")" [WHERE qual]
    delete      := DELETE ident [WHERE qual]
    targets     := target ("," target)*
    target      := [ident "="] expr
    assignments := ident "=" expr ("," ident "=" expr)*
    qual        := orterm (OR orterm)*
    orterm      := factor (AND factor)*
    factor      := comparison | "(" qual ")" | NOT factor
    comparison  := expr cmpop expr
    expr        := term (("+"|"-") term)*
    term        := atom (("*"|"/") atom)*
    atom        := number | string | ident "." ident | "(" expr ")"

Identifiers are bare words; node ids that are tuples are written as
quoted strings (e.g. ``"(0, 0)"``) and compared by literal value.
"""

from __future__ import annotations

import ast as _pyast
import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.exceptions import QueryError


class QuelSyntaxError(QueryError):
    """Raised when a statement cannot be tokenized or parsed."""


# ----------------------------------------------------------------------
# AST nodes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FieldRef:
    variable: str
    field: str


@dataclass(frozen=True)
class Literal:
    value: object


@dataclass(frozen=True)
class BinaryOp:
    op: str  # + - * /
    left: "Expr"
    right: "Expr"


Expr = Union[FieldRef, Literal, BinaryOp]


@dataclass(frozen=True)
class Comparison:
    op: str  # = != < <= > >=
    left: Expr
    right: Expr


@dataclass(frozen=True)
class BoolOp:
    op: str  # and / or
    parts: Tuple["Qual", ...]


@dataclass(frozen=True)
class NotOp:
    part: "Qual"


Qual = Union[Comparison, BoolOp, NotOp]


@dataclass(frozen=True)
class RangeStmt:
    variable: str
    relation: str


@dataclass(frozen=True)
class Target:
    name: str  # output column name
    expr: Expr


@dataclass(frozen=True)
class RetrieveStmt:
    targets: Tuple[Target, ...]
    into: Optional[str] = None
    where: Optional[Qual] = None


@dataclass(frozen=True)
class AppendStmt:
    relation: str
    assignments: Tuple[Tuple[str, Expr], ...]


@dataclass(frozen=True)
class ReplaceStmt:
    variable: str
    assignments: Tuple[Tuple[str, Expr], ...]
    where: Optional[Qual] = None


@dataclass(frozen=True)
class DeleteStmt:
    variable: str
    where: Optional[Qual] = None


Statement = Union[RangeStmt, RetrieveStmt, AppendStmt, ReplaceStmt, DeleteStmt]


# ----------------------------------------------------------------------
# tokenizer
# ----------------------------------------------------------------------
_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>-?\d+\.\d+|-?\d+)
  | (?P<string>"[^"]*"|'[^']*')
  | (?P<cmp><=|>=|!=|=|<|>)
  | (?P<punct>[(),.])
  | (?P<op>[+\-*/])
  | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
    """,
    re.VERBOSE,
)

KEYWORDS = {
    "range", "of", "is", "retrieve", "into", "where", "append", "to",
    "replace", "delete", "and", "or", "not",
}


@dataclass
class _Token:
    kind: str
    text: str


def tokenize(statement: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(statement):
        match = _TOKEN_RE.match(statement, position)
        if match is None:
            raise QuelSyntaxError(
                f"cannot tokenize at: {statement[position:position + 20]!r}"
            )
        position = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        text = match.group()
        if kind == "word" and text.lower() in KEYWORDS:
            tokens.append(_Token("keyword", text.lower()))
        else:
            tokens.append(_Token(kind, text))
    return tokens


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
class _Parser:
    def __init__(self, tokens: List[_Token], source: str) -> None:
        self.tokens = tokens
        self.source = source
        self.position = 0

    # -- primitives ----------------------------------------------------
    def _peek(self) -> Optional[_Token]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise QuelSyntaxError(f"unexpected end of statement: {self.source!r}")
        self.position += 1
        return token

    def _expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self._next()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text or kind
            raise QuelSyntaxError(
                f"expected {wanted!r}, got {token.text!r} in {self.source!r}"
            )
        return token

    def _accept(self, kind: str, text: Optional[str] = None) -> bool:
        token = self._peek()
        if token and token.kind == kind and (text is None or token.text == text):
            self.position += 1
            return True
        return False

    def _ident(self) -> str:
        token = self._next()
        if token.kind != "word":
            raise QuelSyntaxError(
                f"expected identifier, got {token.text!r} in {self.source!r}"
            )
        return token.text

    def _done(self) -> None:
        if self._peek() is not None:
            raise QuelSyntaxError(
                f"trailing input {self._peek().text!r} in {self.source!r}"
            )

    # -- grammar -------------------------------------------------------
    def statement(self) -> Statement:
        token = self._next()
        if token.kind != "keyword":
            raise QuelSyntaxError(f"statements start with a verb: {self.source!r}")
        if token.text == "range":
            return self._range()
        if token.text == "retrieve":
            return self._retrieve()
        if token.text == "append":
            return self._append()
        if token.text == "replace":
            return self._replace()
        if token.text == "delete":
            return self._delete()
        raise QuelSyntaxError(f"unknown statement verb {token.text!r}")

    def _range(self) -> RangeStmt:
        self._expect("keyword", "of")
        variable = self._ident()
        self._expect("keyword", "is")
        relation = self._ident()
        self._done()
        return RangeStmt(variable, relation)

    def _retrieve(self) -> RetrieveStmt:
        into = None
        if self._accept("keyword", "into"):
            into = self._ident()
        self._expect("punct", "(")
        targets = [self._target()]
        while self._accept("punct", ","):
            targets.append(self._target())
        self._expect("punct", ")")
        where = self._where()
        self._done()
        return RetrieveStmt(tuple(targets), into=into, where=where)

    def _target(self) -> Target:
        # Either `name = expr` or a bare expression (named after the
        # field for simple references, positionally otherwise).
        checkpoint = self.position
        if (
            self._peek()
            and self._peek().kind == "word"
            and self.position + 1 < len(self.tokens)
            and self.tokens[self.position + 1].kind == "cmp"
            and self.tokens[self.position + 1].text == "="
        ):
            name = self._ident()
            self._next()  # the '='
            return Target(name, self._expr())
        self.position = checkpoint
        expr = self._expr()
        if isinstance(expr, FieldRef):
            return Target(expr.field, expr)
        return Target(f"column_{self.position}", expr)

    def _append(self) -> AppendStmt:
        self._expect("keyword", "to")
        relation = self._ident()
        assignments = self._assignments()
        self._done()
        return AppendStmt(relation, assignments)

    def _replace(self) -> ReplaceStmt:
        variable = self._ident()
        assignments = self._assignments()
        where = self._where()
        self._done()
        return ReplaceStmt(variable, assignments, where)

    def _delete(self) -> DeleteStmt:
        variable = self._ident()
        where = self._where()
        self._done()
        return DeleteStmt(variable, where)

    def _assignments(self) -> Tuple[Tuple[str, Expr], ...]:
        self._expect("punct", "(")
        pairs = [self._assignment()]
        while self._accept("punct", ","):
            pairs.append(self._assignment())
        self._expect("punct", ")")
        return tuple(pairs)

    def _assignment(self) -> Tuple[str, Expr]:
        name = self._ident()
        self._expect("cmp", "=")
        return (name, self._expr())

    def _where(self) -> Optional[Qual]:
        if self._accept("keyword", "where"):
            return self._qual()
        return None

    # -- qualifications --------------------------------------------
    def _qual(self) -> Qual:
        parts = [self._orterm()]
        while self._accept("keyword", "or"):
            parts.append(self._orterm())
        if len(parts) == 1:
            return parts[0]
        return BoolOp("or", tuple(parts))

    def _orterm(self) -> Qual:
        parts = [self._factor()]
        while self._accept("keyword", "and"):
            parts.append(self._factor())
        if len(parts) == 1:
            return parts[0]
        return BoolOp("and", tuple(parts))

    def _factor(self) -> Qual:
        if self._accept("keyword", "not"):
            return NotOp(self._factor())
        checkpoint = self.position
        if self._accept("punct", "("):
            # Could be a parenthesized qual or an expression; try qual.
            try:
                inner = self._qual()
                self._expect("punct", ")")
                return inner
            except QuelSyntaxError:
                self.position = checkpoint
        left = self._expr()
        op = self._next()
        if op.kind != "cmp":
            raise QuelSyntaxError(
                f"expected comparison operator, got {op.text!r}"
            )
        right = self._expr()
        return Comparison(op.text, left, right)

    # -- expressions ------------------------------------------------
    def _expr(self) -> Expr:
        left = self._term()
        while True:
            token = self._peek()
            if token and token.kind == "op" and token.text in "+-":
                self._next()
                left = BinaryOp(token.text, left, self._term())
            else:
                return left

    def _term(self) -> Expr:
        left = self._atom()
        while True:
            token = self._peek()
            if token and token.kind == "op" and token.text in "*/":
                self._next()
                left = BinaryOp(token.text, left, self._atom())
            else:
                return left

    def _atom(self) -> Expr:
        token = self._next()
        if token.kind == "number":
            value = float(token.text) if "." in token.text else int(token.text)
            return Literal(value)
        if token.kind == "string":
            raw = token.text[1:-1]
            try:
                return Literal(_pyast.literal_eval(raw))
            except (ValueError, SyntaxError):
                return Literal(raw)
        if token.kind == "punct" and token.text == "(":
            inner = self._expr()
            self._expect("punct", ")")
            return inner
        if token.kind == "word":
            self._expect("punct", ".")
            return FieldRef(token.text, self._ident())
        raise QuelSyntaxError(
            f"unexpected token {token.text!r} in expression"
        )


def parse_statement(statement: str) -> Statement:
    """Parse one QUEL statement into its AST."""
    tokens = tokenize(statement)
    if not tokens:
        raise QuelSyntaxError("empty statement")
    return _Parser(tokens, statement).statement()
