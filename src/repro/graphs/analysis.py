"""Whole-graph analysis helpers used by experiments and tests.

The paper reasons about graphs through a few aggregate quantities —
diameter (hop and cost), degree distribution, connectivity — and its
central hypothesis is phrased in them: "estimator functions can improve
the average-case performance of single-pair path computation when the
length of the path is small compared to the diameter of the graph."
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.exceptions import NodeNotFoundError
from repro.graphs.graph import Graph, NodeId
from repro.core.dijkstra import dijkstra_sssp


@dataclass(frozen=True)
class DegreeStatistics:
    """Out-degree distribution summary."""

    minimum: int
    maximum: int
    average: float
    histogram: Tuple[Tuple[int, int], ...]  # (degree, node count)


def degree_statistics(graph: Graph) -> DegreeStatistics:
    """Min / max / mean out-degree and the degree histogram."""
    if graph.node_count == 0:
        return DegreeStatistics(0, 0, 0.0, ())
    degrees = [graph.degree(node_id) for node_id in graph.node_ids()]
    histogram: Dict[int, int] = {}
    for degree in degrees:
        histogram[degree] = histogram.get(degree, 0) + 1
    return DegreeStatistics(
        minimum=min(degrees),
        maximum=max(degrees),
        average=sum(degrees) / len(degrees),
        histogram=tuple(sorted(histogram.items())),
    )


def reachable_from(graph: Graph, source: NodeId) -> Set[NodeId]:
    """All nodes reachable from ``source`` by directed edges."""
    if source not in graph:
        raise NodeNotFoundError(source)
    seen = {source}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v, _cost in graph.neighbors(u):
            if v not in seen:
                seen.add(v)
                queue.append(v)
    return seen


def is_strongly_connected(graph: Graph) -> bool:
    """True when every node reaches every other (directed)."""
    if graph.node_count == 0:
        return True
    start = next(graph.node_ids())
    if len(reachable_from(graph, start)) != graph.node_count:
        return False
    return len(reachable_from(graph.reversed(), start)) == graph.node_count


def weakly_connected_components(graph: Graph) -> List[Set[NodeId]]:
    """Components ignoring edge direction, largest first."""
    undirected: Dict[NodeId, Set[NodeId]] = {
        node_id: set() for node_id in graph.node_ids()
    }
    for edge in graph.edges():
        undirected[edge.source].add(edge.target)
        undirected[edge.target].add(edge.source)
    components: List[Set[NodeId]] = []
    unvisited = set(undirected)
    while unvisited:
        start = unvisited.pop()
        component = {start}
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in undirected[u]:
                if v in unvisited:
                    unvisited.discard(v)
                    component.add(v)
                    queue.append(v)
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def hop_eccentricity(graph: Graph, source: NodeId) -> int:
    """Maximum hop distance from ``source`` to any reachable node."""
    if source not in graph:
        raise NodeNotFoundError(source)
    depth = {source: 0}
    queue = deque([source])
    farthest = 0
    while queue:
        u = queue.popleft()
        for v, _cost in graph.neighbors(u):
            if v not in depth:
                depth[v] = depth[u] + 1
                farthest = max(farthest, depth[v])
                queue.append(v)
    return farthest


def hop_diameter(graph: Graph, sample: Optional[int] = None) -> int:
    """Largest hop eccentricity (exact, or over a node sample).

    Exact diameter is O(n * (n + m)); for the 1089-node road map that
    is still fast, but ``sample`` allows bounding the work on larger
    graphs (evenly spaced sample in insertion order, deterministic).
    """
    node_ids = list(graph.node_ids())
    if not node_ids:
        return 0
    if sample is not None and sample < len(node_ids):
        step = max(1, len(node_ids) // sample)
        node_ids = node_ids[::step]
    return max(hop_eccentricity(graph, node_id) for node_id in node_ids)


def cost_radius(graph: Graph, source: NodeId) -> float:
    """Maximum shortest-path cost from ``source`` (inf if unreachable
    nodes exist is NOT signalled — only reachable nodes count)."""
    distances = dijkstra_sssp(graph, source)
    return max(distances.values()) if distances else 0.0


def path_length_ratio(graph: Graph, source: NodeId, destination: NodeId) -> float:
    """Hop distance between the pair divided by the graph's hop diameter.

    The paper's hypothesis variable: A* wins when this ratio is small.
    Returns ``nan`` when the destination is unreachable.
    """
    depth = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        if u == destination:
            break
        for v, _cost in graph.neighbors(u):
            if v not in depth:
                depth[v] = depth[u] + 1
                queue.append(v)
    if destination not in depth:
        return math.nan
    diameter = hop_diameter(graph, sample=16)
    return depth[destination] / diameter if diameter else math.nan
