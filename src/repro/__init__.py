"""repro — reproduction of Shekhar, Kohli & Coyle (ICDE 1993).

Single-pair path computation algorithms for Advanced Traveller
Information Systems, including the paper's relational (database-backed)
execution engine, analytical I/O cost model, and experiment harness.

Public API highlights
---------------------
* :class:`repro.RoutePlanner` — in-memory planners (iterative /
  dijkstra / astar / bidirectional / greedy).
* :func:`repro.make_grid` / ``repro.graphs.roadmap.make_minneapolis_map``
  — the paper's benchmark graphs.
* :mod:`repro.engine` — the algorithms executed over paged relations
  with block-level I/O cost accounting (the "EQUEL on INGRES" tier).
* :mod:`repro.costmodel` — the algebraic cost formulas of Section 4.
* :mod:`repro.experiments` — regenerates every table and figure.
"""

from repro.core import (
    PathResult,
    RoutePlanner,
    SearchStats,
    astar_search,
    bidirectional_search,
    dijkstra_search,
    diverse_alternatives,
    greedy_best_first_search,
    iterative_search,
    k_shortest_paths,
    plan_route,
)
from repro.core.estimators import (
    EuclideanEstimator,
    LandmarkEstimator,
    ManhattanEstimator,
    ScaledEstimator,
    ZeroEstimator,
    make_estimator,
)
from repro.graphs import (
    Graph,
    graph_from_edges,
    make_grid,
    make_paper_grid,
    paper_queries,
)
from repro.faults import ChaosConfig, FaultInjector, FaultPlan, run_chaos
from repro.service import EstimatorPool, RouteCache, RouteService
from repro.traffic import TrafficFeed, run_replay
from repro.demand import assign, select_link, skim  # after traffic: assign needs it

__version__ = "1.0.0"

__all__ = [
    "PathResult",
    "RoutePlanner",
    "SearchStats",
    "astar_search",
    "bidirectional_search",
    "dijkstra_search",
    "greedy_best_first_search",
    "iterative_search",
    "k_shortest_paths",
    "diverse_alternatives",
    "plan_route",
    "EuclideanEstimator",
    "LandmarkEstimator",
    "ManhattanEstimator",
    "ScaledEstimator",
    "ZeroEstimator",
    "make_estimator",
    "Graph",
    "graph_from_edges",
    "make_grid",
    "make_paper_grid",
    "paper_queries",
    "RouteService",
    "RouteCache",
    "EstimatorPool",
    "TrafficFeed",
    "run_replay",
    "skim",
    "select_link",
    "assign",
    "ChaosConfig",
    "FaultInjector",
    "FaultPlan",
    "run_chaos",
    "__version__",
]
