"""Edge cost models from Section 5.1 of the paper.

The paper evaluates three edge-cost models on synthetic grids:

* **uniform** — every edge costs exactly 1;
* **20% variance** — ``1 + 0.2 * U[0, 1]`` with U uniform on [0, 1];
* **skewed** — a small cost on an L-shaped corridor (bottom row then
  right column), eliminating backtracking for estimator-based search,
  "creating the best case" for A* version 3.

A cost model is a callable mapping an edge's endpoints to its cost;
grid-specific models additionally know the grid dimension so they can
identify the cheap corridor.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Protocol, Tuple

GridCoord = Tuple[int, int]


class CostModel(Protocol):
    """Assigns a cost to an edge between two grid coordinates."""

    name: str

    def cost(self, u: GridCoord, v: GridCoord) -> float:
        """Cost of the directed edge ``u -> v``."""
        ...


class UniformCostModel:
    """Unit cost on every edge — the paper's uniform model."""

    name = "uniform"

    def cost(self, u: GridCoord, v: GridCoord) -> float:
        return 1.0

    def __repr__(self) -> str:
        return "UniformCostModel()"


class VarianceCostModel:
    """``1 + variance * U[0, 1]`` per edge — the paper's 20% variance model.

    Costs are symmetric (the grid is undirected): the same draw is used
    for ``u -> v`` and ``v -> u``, keyed on the sorted endpoint pair, so
    both directions of a road segment have equal travel cost.
    """

    name = "variance"

    def __init__(self, variance: float = 0.2, seed: int = 1993) -> None:
        if variance < 0:
            raise ValueError(f"variance must be non-negative, got {variance}")
        self.variance = variance
        self.seed = seed
        self._rng = random.Random(seed)
        self._cache: Dict[Tuple[GridCoord, GridCoord], float] = {}
        self.name = f"variance-{int(round(variance * 100))}pct"

    def cost(self, u: GridCoord, v: GridCoord) -> float:
        key = (u, v) if u <= v else (v, u)
        if key not in self._cache:
            self._cache[key] = 1.0 + self.variance * self._rng.random()
        return self._cache[key]

    def __repr__(self) -> str:
        return f"VarianceCostModel(variance={self.variance}, seed={self.seed})"


class SkewedCostModel:
    """Cheap L-shaped corridor along the bottom row and right column.

    The paper: "the skewed-cost model assigns a small cost to the edges
    [(1, i), (1, i+1)] on the bottom of the grid and the edges
    [(k, i), (k, i+1)] on the right side of the grid", so that the
    shortest source-to-destination path hugs the corridor and
    estimator-driven search never backtracks.

    Grid coordinates here are ``(row, col)`` with row 0 the bottom and
    col ``k - 1`` the right edge.
    """

    name = "skewed"

    def __init__(self, k: int, cheap_cost: float = 0.1, normal_cost: float = 1.0) -> None:
        if k < 2:
            raise ValueError(f"grid dimension k must be >= 2, got {k}")
        if not 0 <= cheap_cost <= normal_cost:
            raise ValueError(
                f"cheap_cost ({cheap_cost}) must lie in [0, normal_cost={normal_cost}]"
            )
        self.k = k
        self.cheap_cost = cheap_cost
        self.normal_cost = normal_cost

    def _on_corridor(self, u: GridCoord, v: GridCoord) -> bool:
        (ur, uc), (vr, vc) = u, v
        bottom_row = ur == 0 and vr == 0
        right_col = uc == self.k - 1 and vc == self.k - 1
        return bottom_row or right_col

    def cost(self, u: GridCoord, v: GridCoord) -> float:
        return self.cheap_cost if self._on_corridor(u, v) else self.normal_cost

    def __repr__(self) -> str:
        return (
            f"SkewedCostModel(k={self.k}, cheap_cost={self.cheap_cost}, "
            f"normal_cost={self.normal_cost})"
        )


def make_cost_model(name: str, k: int, seed: int = 1993) -> CostModel:
    """Factory used by the experiment harness.

    ``name`` is one of ``uniform``, ``variance`` (the paper's 20% model)
    or ``skewed``; ``k`` is the grid dimension (needed by the skewed
    model to locate the corridor).
    """
    if name == "uniform":
        return UniformCostModel()
    if name == "variance":
        return VarianceCostModel(variance=0.2, seed=seed)
    if name == "skewed":
        return SkewedCostModel(k=k)
    raise ValueError(
        f"unknown cost model {name!r}; expected uniform, variance or skewed"
    )


PAPER_COST_MODELS = ("uniform", "variance", "skewed")
