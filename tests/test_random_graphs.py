"""Tests for the random road-like graph generators."""

import math

import pytest

from repro.graphs.analysis import is_strongly_connected
from repro.graphs.random_graphs import (
    random_geometric_graph,
    random_grid_with_diagonals,
    random_sparse_directed,
)


class TestGeometric:
    def test_size_and_connectivity(self):
        graph = random_geometric_graph(40, radius=0.15, seed=3)
        assert graph.node_count == 40
        assert is_strongly_connected(graph)

    def test_costs_are_distances(self):
        graph = random_geometric_graph(20, seed=1)
        for edge in graph.edges():
            (ux, uy) = graph.coordinates(edge.source)
            (vx, vy) = graph.coordinates(edge.target)
            assert edge.cost == pytest.approx(math.hypot(ux - vx, uy - vy))

    def test_deterministic(self):
        a = random_geometric_graph(25, seed=9)
        b = random_geometric_graph(25, seed=9)
        assert {(e.source, e.target) for e in a.edges()} == {
            (e.source, e.target) for e in b.edges()
        }

    def test_validation(self):
        with pytest.raises(ValueError):
            random_geometric_graph(0)


class TestDiagonalGrid:
    def test_has_diagonals(self):
        graph = random_grid_with_diagonals(6, diagonal_probability=1.0, seed=0)
        assert graph.has_edge((0, 0), (1, 1))
        assert graph.edge_cost((0, 0), (1, 1)) == pytest.approx(math.sqrt(2))

    def test_no_diagonals_at_zero_probability(self):
        graph = random_grid_with_diagonals(6, diagonal_probability=0.0, seed=0)
        assert not graph.has_edge((0, 0), (1, 1))

    def test_validation(self):
        with pytest.raises(ValueError):
            random_grid_with_diagonals(1)
        with pytest.raises(ValueError):
            random_grid_with_diagonals(5, diagonal_probability=1.5)


class TestSparseDirected:
    def test_strongly_connected_via_cycle(self):
        graph = random_sparse_directed(30, 0, seed=2)
        assert is_strongly_connected(graph)
        assert graph.edge_count == 30

    def test_extra_edges_added(self):
        graph = random_sparse_directed(30, 25, seed=2)
        assert graph.edge_count == 55

    def test_costs_positive(self):
        graph = random_sparse_directed(15, 10, seed=4)
        assert all(edge.cost > 0 for edge in graph.edges())

    def test_validation(self):
        with pytest.raises(ValueError):
            random_sparse_directed(1, 0)
        with pytest.raises(ValueError):
            random_sparse_directed(5, -1)
