"""Relational execution of the Iterative algorithm — Table 2's 8 steps.

One *iteration* is one wave of the outer loop:

5. fetch all current nodes (a scan of R);
6. join them with S to fetch every adjacency list at once — this is
   where the Iterative algorithm differs most from the best-first
   family, because its outer join input holds *many* current nodes, so
   the optimizer frequently prefers a hash or nested-loop plan over
   per-tuple index probes;
7. apply the label improvements and flip statuses (current -> closed,
   newly-opened -> current);
8. scan R to count the surviving current nodes (the termination test).

The algorithm runs until no current nodes remain — it cannot stop at
the destination (Lemma 1 gives optimality only at full exploration),
which is exactly why its iteration count is path-length-insensitive.

This module is a thin configuration of :mod:`repro.kernel`: the
relational wave policy (:class:`RelationalWavePolicy` holds steps 5-8)
on :class:`RelationalBackend`.
"""

from __future__ import annotations

from typing import Optional

from repro.exceptions import NodeNotFoundError, PlannerError
from repro.graphs.graph import NodeId
from repro.engine.relational_graph import RelationalGraph
from repro.engine.tracing import RelationalRunResult
from repro.kernel.backends import RelationalBackend, RelationalWavePolicy
from repro.kernel.loop import SearchConfig, run_search


def run_iterative(
    rgraph: RelationalGraph,
    source: NodeId,
    destination: NodeId,
    max_iterations: Optional[int] = None,
) -> RelationalRunResult:
    """Execute the Iterative BFS as a database program."""
    graph = rgraph.graph
    if source not in graph:
        raise NodeNotFoundError(source)
    if destination not in graph:
        raise NodeNotFoundError(destination)

    def make_policy(backend, stats, dest):
        R = rgraph.fresh_node_relation(populate=True)  # C1-C3
        return RelationalWavePolicy(rgraph, R)

    config = SearchConfig(
        algorithm="iterative",
        variant="status-attribute",
        make_policy=make_policy,
        limit=(
            max_iterations
            if max_iterations is not None
            else 4 * len(graph) + 4
        ),
        limit_error=lambda bound: PlannerError(
            f"relational iterative exceeded {bound} waves"
        ),
        trace=True,
    )
    return run_search(RelationalBackend(rgraph), source, destination, config)
