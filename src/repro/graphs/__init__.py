"""Graph substrate: directed graphs, generators and cost models."""

from repro.graphs.graph import Edge, Graph, Node, graph_from_edges
from repro.graphs.costmodels import (
    CostModel,
    PAPER_COST_MODELS,
    SkewedCostModel,
    UniformCostModel,
    VarianceCostModel,
    make_cost_model,
)
from repro.graphs.grid import (
    GridQuery,
    PAPER_GRID_SIZES,
    diagonal_query,
    horizontal_query,
    make_grid,
    make_paper_grid,
    paper_queries,
    semi_diagonal_query,
)

__all__ = [
    "Edge",
    "Graph",
    "Node",
    "graph_from_edges",
    "CostModel",
    "PAPER_COST_MODELS",
    "SkewedCostModel",
    "UniformCostModel",
    "VarianceCostModel",
    "make_cost_model",
    "GridQuery",
    "PAPER_GRID_SIZES",
    "diagonal_query",
    "horizontal_query",
    "make_grid",
    "make_paper_grid",
    "paper_queries",
    "semi_diagonal_query",
]
