"""Durability subsystem: write-ahead logging and crash recovery.

``repro.wal`` gives the simulated storage engine what the paper's real
INGRES instance had for free — relations that survive process death.
The pieces:

* :class:`WriteAheadLog` — redo-only, CRC32-framed append log with
  fuzzy checkpoints (:mod:`repro.wal.log`);
* :class:`InMemoryStableStore` / :class:`DirectoryStableStore` — the
  pluggable stable storage that outlives a crash
  (:mod:`repro.wal.stable`);
* :func:`recover_database` / :func:`replay_epochs` — the ARIES-lite
  redo pass and the traffic-epoch resync (:mod:`repro.wal.recovery`).

Attach a log with ``Database(wal=WriteAheadLog(...))`` and recover
with ``Database.recover(log)``; ``RouteService(wal=...,
recover_on_start=True)`` journals and replays traffic epochs. Without
a log attached, every code path is byte-for-byte the seed behaviour.
"""

from repro.wal.log import CheckpointReport, WriteAheadLog
from repro.wal.records import decode_stream, frame, unframe
from repro.wal.recovery import RecoveryReport, recover_database, replay_epochs
from repro.wal.stable import DirectoryStableStore, InMemoryStableStore

__all__ = [
    "CheckpointReport",
    "DirectoryStableStore",
    "InMemoryStableStore",
    "RecoveryReport",
    "WriteAheadLog",
    "decode_stream",
    "frame",
    "recover_database",
    "replay_epochs",
    "unframe",
]
