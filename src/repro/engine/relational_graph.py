"""Relational representation of a graph — Section 4's S and R relations.

"Directed graphs are represented as pairs of relations: edge (S) and
node (R). The edge relation S is a read-only relation ... Its fields
include: Begin-node, End-node, and Edge-cost. ... The relation S has a
primary index (random hash) on the field S.Begin-node. ... The relation
R has a primary index (ISAM) on node-id."

:class:`RelationalGraph` loads a :class:`~repro.graphs.graph.Graph`
into a simulated database once (S is read-only thereafter) and can
mint fresh node relations R per algorithm run, since R "stores the
internal data-structures of various routing algorithms".
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Set, Tuple

from repro.graphs.graph import Graph, NodeId
from repro.storage.database import Database
from repro.storage.iostats import IOStatistics
from repro.storage.relation import Relation
from repro.storage.schema import (
    STATUS_NULL,
    edge_schema,
    node_schema,
)

#: Sentinel for "no predecessor yet" in R.path.
NO_PATH = None

#: Sentinel for "unlabelled" path cost.
UNLABELLED = float("inf")


class RelationalGraph:
    """A graph resident in the simulated DBMS."""

    def __init__(
        self,
        graph: Graph,
        database: Optional[Database] = None,
        stats: Optional[IOStatistics] = None,
    ) -> None:
        self.graph = graph
        if database is not None:
            self.db = database
        else:
            self.db = Database(name=f"db-{graph.name}", stats=stats)
        self.stats = self.db.stats
        self._node_counter = 0
        self.S = self._load_edge_relation()
        # Traffic propagation: S was loaded at one fingerprint; epochs
        # dirty adjacency lists by begin-node and sync() re-fetches them
        # before the next run rather than serving stale costs.
        self._dirty_lock = threading.Lock()
        self._dirty_begins: Set[NodeId] = set()
        self._synced_fingerprint = graph.fingerprint
        self._covered_fingerprint = graph.fingerprint
        self.syncs = 0
        self.tuples_refreshed = 0
        self.full_reloads = 0

    # ------------------------------------------------------------------
    def _load_edge_relation(self) -> Relation:
        """Bulk-load S and build its primary hash index on Begin-node."""
        S = self.db.create_relation(edge_schema(), name="S")
        S.bulk_load(
            {"begin": edge.source, "end": edge.target, "cost": edge.cost}
            for edge in self.graph.edges()
        )
        S.create_hash_index("begin")
        return S

    # ------------------------------------------------------------------
    @property
    def edge_blocks(self) -> int:
        """B_s: blocks of the edge relation."""
        return self.S.block_count

    @property
    def average_adjacency(self) -> float:
        """|A|: average out-degree, the model's neighbor-count parameter."""
        return self.graph.average_degree()

    def result_blocking_factor(self) -> int:
        """Bf_rs: blocking factor of R x S join results (Table 1)."""
        combined = edge_schema().tuple_size + node_schema().tuple_size
        return max(1, self.db.block_size // combined)

    # ------------------------------------------------------------------
    def fresh_node_relation(
        self, populate: bool = True, with_index: bool = True
    ) -> Relation:
        """Create a new R for one algorithm run.

        ``populate=True`` performs the paper's initialization steps:
        C2 (initialize R with all nodes: read S's blocks, bulk-write R)
        and C3 (sort + build the ISAM index on node-id). The lazy
        variant (``populate=False``) is what A* version 1 uses — it
        "expands nodes and appends them to the resultant relation as it
        goes along".
        """
        self._node_counter += 1
        name = f"R{self._node_counter}"
        with self.stats.phase("init"):
            R = self.db.create_relation(node_schema(), name=name)  # C1
            if populate:
                # C2: the node set is derived by scanning the edge
                # relation, so its blocks are read once.
                self.stats.charge_read(self.S.block_count)
                R.bulk_load(
                    {
                        "node_id": node.node_id,
                        "x": node.x,
                        "y": node.y,
                        "status": STATUS_NULL,
                        "path": NO_PATH,
                        "path_cost": UNLABELLED,
                    }
                    for node in self.graph.nodes()
                )
                if with_index:
                    R.create_isam_index("node_id")  # C3
        return R

    def drop_node_relation(self, relation: Relation) -> None:
        """Discard a run's R (charges the fixed deletion cost D_t)."""
        self.db.drop_relation(relation.name)

    # ------------------------------------------------------------------
    # traffic propagation (keeping S honest across cost epochs)
    # ------------------------------------------------------------------
    def handle_epoch(self, epoch) -> int:
        """Record which adjacency lists a traffic epoch dirtied.

        Bookkeeping only — no I/O is charged here. The touched
        begin-nodes go into a dirty set and :meth:`sync` re-fetches
        those adjacency blocks before the next run. Epochs are chained
        by fingerprint: a gap (an update this graph saw but we were not
        told about) poisons the chain, and ``sync`` falls back to a
        full reload rather than trust a partial dirty set.
        """
        if epoch.graph is not self.graph and epoch.graph.uid != self.graph.uid:
            return 0
        with self._dirty_lock:
            if epoch.previous_fingerprint == self._covered_fingerprint:
                for delta in epoch.deltas:
                    self._dirty_begins.add(delta.source)
                self._covered_fingerprint = epoch.fingerprint
        return len(epoch.deltas)

    def sync(self) -> int:
        """Re-fetch adjacency blocks dirtied since the last run.

        For each dirty begin-node the hash index is probed (block reads
        charged per chain page), the matching S tuples are read, and any
        whose cost moved are rewritten in place (one ``t_update`` each)
        — the paper's fetch/REPLACE rates, attributed to the
        ``traffic-sync`` phase. When the dirty set cannot account for
        every change since the last sync (updates bypassed the feed),
        S is dropped and bulk-reloaded instead. Returns the number of
        tuples refreshed; 0 when S is already current.

        Fault-atomic: the dirty set is read without being cleared, so
        an injected fault mid-refresh leaves it intact and a retry sees
        the same work list. The per-tuple refresh is idempotent (a
        tuple already at the new cost is skipped), so partially-applied
        work is simply completed on retry. State is only advanced after
        the refresh fully succeeds.
        """
        current = self.graph.fingerprint
        if current == self._synced_fingerprint:
            return 0
        with self._dirty_lock:
            dirty = sorted(self._dirty_begins, key=repr)
            covered = self._covered_fingerprint
        refreshed = 0
        # The refresh below may raise (injected fault): nothing has
        # been cleared yet, so the retry re-reads an intact dirty set.
        with self.stats.phase("traffic-sync"):
            if covered == current and self.S.hash_index is not None:
                for begin in dirty:
                    for rid in self.S.hash_index.probe(begin):
                        row = dict(self.S.heap.read(rid))
                        new_cost = self.graph.edge_cost(row["begin"], row["end"])
                        if new_cost != row["cost"]:
                            row["cost"] = new_cost
                            self.S.heap.update(rid, row)
                            refreshed += 1
            else:
                if self.db.has_relation(self.S.name):
                    self.db.drop_relation(self.S.name)
                self.S = self._load_edge_relation()
                refreshed = self.S.tuple_count
                self.full_reloads += 1
        with self._dirty_lock:
            self._dirty_begins.difference_update(dirty)
            if self._covered_fingerprint == covered:
                # No epoch arrived during the refresh; the chain now
                # covers exactly what we just absorbed.
                self._covered_fingerprint = current
            # else: an epoch extended the chain mid-refresh — keep its
            # coverage claim; its begin-nodes are still in the dirty
            # set and the next sync picks them up.
        self.syncs += 1
        self._synced_fingerprint = current
        self.tuples_refreshed += refreshed
        return refreshed

    @property
    def stale(self) -> bool:
        """True when the graph has costs S has not yet absorbed."""
        return self.graph.fingerprint != self._synced_fingerprint

    def verify(self) -> bool:
        """Integrity audit of the mirror (no I/O charge: a sweep).

        Runs the index ``verify()`` sweeps on S and — when the mirror
        is not stale — checks every S tuple against the graph: same
        edge set, same costs. The crash matrix runs this after
        recovery to prove the rebuilt mirror serves no corrupt
        adjacency. Raises :class:`~repro.exceptions.IndexError_` (index
        damage) or :class:`~repro.exceptions.StorageError` (content
        drift) on the first violation.
        """
        from repro.exceptions import StorageError

        if self.S.hash_index is not None:
            self.S.hash_index.verify()
        if self.S.isam is not None:
            self.S.isam.verify()
        if not self.stale:
            edges = {
                (edge.source, edge.target): edge.cost
                for edge in self.graph.edges()
            }
            seen = set()
            for page in self.S.heap.pages:
                for _slot, row in page.rows():
                    values = self.S.schema.as_dict(row)
                    key = (values["begin"], values["end"])
                    if key not in edges:
                        raise StorageError(
                            f"S tuple {key} is not an edge of "
                            f"{self.graph.name!r}"
                        )
                    if values["cost"] != edges[key]:
                        raise StorageError(
                            f"S tuple {key} carries cost {values['cost']!r}, "
                            f"graph says {edges[key]!r}"
                        )
                    seen.add(key)
            missing = len(edges) - len(seen)
            if missing:
                raise StorageError(
                    f"S is missing {missing} of {len(edges)} graph edges"
                )
        return True

    # ------------------------------------------------------------------
    def adjacency_join(
        self,
        current_tuples: List[dict],
        stats: Optional[IOStatistics] = None,
        forced_strategy=None,
    ):
        """Join current node(s) with S to fetch their adjacency lists.

        This is step 6 of Table 2 / step 7 of Table 3: the optimizer
        chooses among the four join strategies with the live block
        counts, and the result tuples carry both the current node's
        label fields and the edge fields.
        """
        from repro.query.optimizer import execute_join

        stats = stats or self.stats
        expected = int(round(len(current_tuples) * max(1.0, self.average_adjacency)))
        return execute_join(
            outer=current_tuples,
            outer_key="node_id",
            outer_blocking_factor=node_schema().blocking_factor(self.db.block_size),
            inner=self.S,
            inner_key="begin",
            expected_result_tuples=expected,
            result_blocking_factor=self.result_blocking_factor(),
            stats=stats,
            forced_strategy=forced_strategy,
        )

    def __repr__(self) -> str:
        return (
            f"RelationalGraph({self.graph.name!r}, |S|={self.S.tuple_count}, "
            f"B_s={self.edge_blocks})"
        )
