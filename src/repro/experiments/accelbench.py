"""Pinned accelerator benchmark: query speedup vs customization latency.

The accelerator pipeline's bargain is explicit: pay a topology-only
preprocess once, pay a cheap metric customize per traffic epoch, and
answer point queries much faster than a from-scratch search. This
harness measures both sides of that bargain on one **pinned workload**
(fixed grid, fixed seed, fixed OD-pair batch, fixed epoch sweeps) and
audits exactness the whole way — an accelerator that is fast but wrong
fails the run, it does not produce a report.

Scenarios (each best-of-N over ``repetitions`` timed runs of the full
pair batch):

* ``query/dict`` — the historical fused dict Dijkstra (the baseline
  the ISSUE's >= 2x floor is measured against);
* ``query/csr`` — the CSR fastpath tier (warm build cache);
* ``query/cch`` — the CCH-lite accelerator's elimination-tree query,
  preprocessed and customized *outside* the timed region (that cost is
  reported separately, which is the whole point).

After the query scenarios, ``epochs`` traffic epochs are applied; for
each one the report records the accelerator's re-customization latency
(incremental, riding the epoch's delta chain) and re-audits every
pinned pair against a dict-tier Dijkstra on the updated costs.

``benchmarks/bench_accel.py`` and ``atis-repro bench-accel`` both run
this and emit ``BENCH_accel.json`` at the repo root; the report
refuses to serialise unless every scenario ran, every epoch was
measured, and **zero** answers were inexact.
"""

from __future__ import annotations

import json
import math
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.graphs.graph import Graph
from repro.graphs.grid import make_paper_grid
from repro.kernel import accel, csr, fastpath

#: Every scenario a complete report must contain, in report order.
EXPECTED_SCENARIOS = (
    "query/dict",
    "query/csr",
    "query/cch",
)


@dataclass
class AccelBenchConfig:
    """The pinned workload. Changing any field changes what a number
    means across commits — bump deliberately, never casually."""

    grid: int = 30
    cost_model: str = "variance"
    seed: int = 1993
    #: Timed runs of the full pair batch per scenario.
    repetitions: int = 3
    #: Random OD pairs in the batch (drawn from ``seed``).
    pairs: int = 55
    #: Traffic epochs applied after the query scenarios.
    epochs: int = 3
    #: Edges re-priced per epoch (incident-sized, so the incremental
    #: customize path is the one under test; dense sweeps trip the
    #: accelerator's density cutoff and run the full pass instead).
    epoch_edges: int = 12


@dataclass
class ScenarioTiming:
    """Best-of-N wall time for one scenario (the full pair batch)."""

    name: str
    best_s: float
    mean_s: float
    repetitions: int


@dataclass
class EpochTiming:
    """One traffic epoch absorbed by the accelerator."""

    number: int
    deltas: int
    customize_s: float
    incremental: bool
    pairs_checked: int
    inexact: int


@dataclass
class AccelBenchReport:
    """Scenario timings, per-epoch customize latencies, exactness audit."""

    config: AccelBenchConfig
    timings: Dict[str, ScenarioTiming] = field(default_factory=dict)
    #: One-off pipeline costs measured outside any scenario (seconds).
    overheads: Dict[str, float] = field(default_factory=dict)
    epochs: List[EpochTiming] = field(default_factory=list)
    #: Exactness audit of the timed query scenarios (pre-epoch).
    pairs_checked: int = 0
    inexact: int = 0
    #: Structure counters from the accelerator.
    arcs: int = 0
    shortcuts: int = 0

    @property
    def complete(self) -> bool:
        return (
            all(name in self.timings for name in EXPECTED_SCENARIOS)
            and len(self.epochs) == self.config.epochs
        )

    @property
    def missing(self) -> List[str]:
        out = [name for name in EXPECTED_SCENARIOS if name not in self.timings]
        if len(self.epochs) != self.config.epochs:
            out.append(
                f"epochs ({len(self.epochs)}/{self.config.epochs} measured)"
            )
        return out

    @property
    def total_inexact(self) -> int:
        return self.inexact + sum(epoch.inexact for epoch in self.epochs)

    @property
    def clean(self) -> bool:
        return self.total_inexact == 0

    def speedup(self, baseline: str, candidate: str) -> float:
        """How many times faster ``candidate`` is than ``baseline``."""
        base = self.timings[baseline].best_s
        cand = self.timings[candidate].best_s
        return base / cand if cand > 0 else float("inf")

    @property
    def speedups(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        pairs = (
            ("cch_vs_dict", "query/dict", "query/cch"),
            ("cch_vs_csr", "query/csr", "query/cch"),
            ("csr_vs_dict", "query/dict", "query/csr"),
        )
        for name, baseline, candidate in pairs:
            if baseline in self.timings and candidate in self.timings:
                out[name] = self.speedup(baseline, candidate)
        return out

    def summary_lines(self) -> List[str]:
        cfg = self.config
        lines = [
            f"workload: grid {cfg.grid}x{cfg.grid} {cfg.cost_model} "
            f"seed={cfg.seed}, {cfg.pairs} pairs, best of "
            f"{cfg.repetitions}, {cfg.epochs} epochs x "
            f"{cfg.epoch_edges} edges",
            f"overlay: {self.arcs} arcs ({self.shortcuts} shortcuts)",
        ]
        for name in EXPECTED_SCENARIOS:
            timing = self.timings.get(name)
            if timing is None:
                lines.append(f"{name:16s} MISSING")
                continue
            lines.append(
                f"{name:16s} best {timing.best_s * 1e3:8.3f} ms   "
                f"mean {timing.mean_s * 1e3:8.3f} ms"
            )
        for name, seconds in sorted(self.overheads.items()):
            lines.append(f"{name:16s} once {seconds * 1e3:8.3f} ms")
        for epoch in self.epochs:
            kind = "incremental" if epoch.incremental else "full"
            lines.append(
                f"epoch {epoch.number}: customize {epoch.customize_s * 1e3:8.3f} ms "
                f"({kind}, {epoch.deltas} deltas), "
                f"{epoch.pairs_checked} pairs audited, "
                f"{epoch.inexact} inexact"
            )
        for name, ratio in self.speedups.items():
            lines.append(f"speedup {name}: {ratio:.2f}x")
        lines.append(
            f"audit: {self.pairs_checked} pre-epoch pairs, "
            f"{self.total_inexact} inexact total"
        )
        return lines

    def to_json(self, indent: int = 2) -> str:
        if not self.complete:
            raise ValueError(
                "refusing to serialise a partial accel report; missing: "
                f"{', '.join(self.missing)}"
            )
        if not self.clean:
            raise ValueError(
                "refusing to serialise an inexact accel report; "
                f"{self.total_inexact} answers disagreed with Dijkstra"
            )
        cfg = self.config
        return json.dumps(
            {
                "workload": {
                    "grid": cfg.grid,
                    "cost_model": cfg.cost_model,
                    "seed": cfg.seed,
                    "repetitions": cfg.repetitions,
                    "pairs": cfg.pairs,
                    "epochs": cfg.epochs,
                    "epoch_edges": cfg.epoch_edges,
                },
                "overlay": {"arcs": self.arcs, "shortcuts": self.shortcuts},
                "scenarios": {
                    name: {
                        "best_s": round(t.best_s, 9),
                        "mean_s": round(t.mean_s, 9),
                        "repetitions": t.repetitions,
                    }
                    for name, t in (
                        (name, self.timings[name])
                        for name in EXPECTED_SCENARIOS
                    )
                },
                "overheads_s": {
                    name: round(seconds, 9)
                    for name, seconds in sorted(self.overheads.items())
                },
                "epochs": [
                    {
                        "number": epoch.number,
                        "deltas": epoch.deltas,
                        "customize_s": round(epoch.customize_s, 9),
                        "incremental": epoch.incremental,
                        "pairs_checked": epoch.pairs_checked,
                        "inexact": epoch.inexact,
                    }
                    for epoch in self.epochs
                ],
                "speedups": {
                    name: round(ratio, 4)
                    for name, ratio in self.speedups.items()
                },
                "audit": {
                    "pairs_checked": self.pairs_checked,
                    "inexact": self.total_inexact,
                },
            },
            indent=indent,
        )


def _time_best_of(fn: Callable[[], object], repetitions: int) -> Tuple[float, float]:
    """(best, mean) wall seconds of ``fn`` over ``repetitions`` runs."""
    samples = []
    for _ in range(repetitions):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return min(samples), sum(samples) / len(samples)


def pinned_graph(config: AccelBenchConfig) -> Graph:
    return make_paper_grid(config.grid, config.cost_model, seed=config.seed)


def pinned_pairs(config: AccelBenchConfig, graph: Graph) -> List[Tuple]:
    rng = random.Random(config.seed)
    nodes = sorted(node.node_id for node in graph.nodes())
    return [
        (rng.choice(nodes), rng.choice(nodes)) for _ in range(config.pairs)
    ]


def _exact(cost_a: float, cost_b: float) -> bool:
    return math.isclose(cost_a, cost_b, rel_tol=1e-9, abs_tol=1e-9)


def _audit(
    graph: Graph, instance: accel.Accelerator, pairs: List[Tuple]
) -> Tuple[int, int]:
    """(checked, inexact) — accelerator answers vs dict-tier Dijkstra."""
    inexact = 0
    for source, destination in pairs:
        run = instance.query(graph, source, destination)
        ref = fastpath.uniform_cost_dict(graph, source, destination)
        if run.found != ref.found:
            inexact += 1
        elif ref.found and not (
            _exact(run.cost, ref.cost)
            and _exact(graph.path_cost(run.path), run.cost)
        ):
            inexact += 1
    return len(pairs), inexact


def run_accel_bench(
    config: AccelBenchConfig | None = None,
    scenarios: Tuple[str, ...] = EXPECTED_SCENARIOS,
    with_epochs: bool = True,
) -> AccelBenchReport:
    """Run the pinned scenarios (and epoch sweeps) and return the report.

    ``scenarios`` / ``with_epochs`` exist so the pytest harness can run
    one piece per test; a partial report refuses
    :meth:`~AccelBenchReport.to_json`.
    """
    config = config or AccelBenchConfig()
    report = AccelBenchReport(config=config)
    graph = pinned_graph(config)
    pairs = pinned_pairs(config, graph)
    reps = config.repetitions

    def batch(fn: Callable) -> Callable[[], None]:
        def run() -> None:
            for source, destination in pairs:
                fn(graph, source, destination)

        return run

    def record(name: str, fn: Callable[[], object]) -> None:
        best, mean = _time_best_of(fn, reps)
        report.timings[name] = ScenarioTiming(name, best, mean, reps)

    wanted = set(scenarios)

    if "query/dict" in wanted:
        record("query/dict", batch(fastpath.uniform_cost_dict))
    if "query/csr" in wanted:
        csr.csr_for(graph)
        record("query/csr", batch(fastpath.uniform_cost))

    needs_cch = "query/cch" in wanted or with_epochs
    if needs_cch:
        instance = accel.make_accelerator("cch")
        started = time.perf_counter()
        instance.preprocess(graph)
        report.overheads["cch-preprocess"] = time.perf_counter() - started
        started = time.perf_counter()
        instance.customize(graph)
        report.overheads["cch-customize-full"] = time.perf_counter() - started
        report.arcs = instance.arc_count
        report.shortcuts = instance.shortcut_count
        if "query/cch" in wanted:
            record("query/cch", batch(instance.query))
            checked, inexact = _audit(graph, instance, pairs)
            report.pairs_checked = checked
            report.inexact = inexact

    if with_epochs:
        from repro.traffic.feed import TrafficFeed

        feed = TrafficFeed(graph)
        feed.subscribe(instance)
        edge_rng = random.Random(config.seed + 7)
        edges = sorted((e.source, e.target) for e in graph.edges())
        for number in range(1, config.epochs + 1):
            sample = edge_rng.sample(edges, min(config.epoch_edges, len(edges)))
            updates = [
                (u, v, graph.edge_cost(u, v) * edge_rng.uniform(0.7, 1.6))
                for u, v in sample
            ]
            before = instance.incremental_customizes
            epoch = feed.apply(updates)
            checked, inexact = _audit(graph, instance, pairs)
            report.epochs.append(
                EpochTiming(
                    number=number,
                    deltas=len(epoch.deltas),
                    # The accelerator's own measurement of the customize
                    # leg this epoch triggered (excludes the feed's
                    # delta application and fan-out bookkeeping).
                    customize_s=instance.last_customize_s,
                    incremental=instance.incremental_customizes > before,
                    pairs_checked=checked,
                    inexact=inexact,
                )
            )

    return report
