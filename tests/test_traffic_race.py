"""Concurrent update-vs-plan races: single-epoch pricing guarantees."""

import threading

import pytest

from repro.graphs.graph import Graph
from repro.graphs.grid import make_paper_grid
from repro.service import RouteService
from repro.traffic import ReplayConfig, TrafficFeed, run_replay

pytestmark = pytest.mark.traffic


def chain_graph(cost: float) -> Graph:
    graph = Graph(name="chain")
    for index in range(4):
        graph.add_node(index, index, 0)
    for index in range(3):
        graph.add_edge(index, index + 1, cost)
    return graph


class TestSingleEpochPricing:
    def test_no_route_priced_on_a_mix_of_epochs(self):
        """Epochs swing every edge between 1.0 and 10.0 while readers
        plan. Any mixed-epoch route would price strictly between the
        two pure totals (3.0 and 30.0) and is therefore detectable."""
        graph = chain_graph(1.0)
        service = RouteService(default_algorithm="dijkstra")
        feed = TrafficFeed(graph)
        feed.subscribe(service)
        legal = {3.0, 30.0}
        observed = []
        errors = []
        stop = threading.Event()

        def updater():
            flip = True
            while not stop.is_set():
                cost = 10.0 if flip else 1.0
                feed.apply([(i, i + 1, cost) for i in range(3)])
                flip = not flip

        def reader():
            try:
                for _ in range(200):
                    result = service.plan(graph, 0, 3)
                    observed.append(result.cost)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        update_thread = threading.Thread(target=updater)
        readers = [threading.Thread(target=reader) for _ in range(3)]
        update_thread.start()
        for thread in readers:
            thread.start()
        for thread in readers:
            thread.join()
        stop.set()
        update_thread.join()

        assert not errors
        assert observed
        mixed = [cost for cost in observed if cost not in legal]
        assert mixed == [], f"routes priced on mixed epochs: {mixed[:5]}"

    def test_plan_many_answers_each_single_epoch(self):
        graph = chain_graph(1.0)
        service = RouteService(default_algorithm="dijkstra")
        feed = TrafficFeed(graph)
        feed.subscribe(service)
        legal = {1.0, 10.0, 2.0, 20.0, 3.0, 30.0}
        errors = []
        stop = threading.Event()

        def updater():
            flip = True
            while not stop.is_set():
                cost = 10.0 if flip else 1.0
                feed.apply([(i, i + 1, cost) for i in range(3)])
                flip = not flip

        update_thread = threading.Thread(target=updater)
        update_thread.start()
        try:
            for _ in range(60):
                batch = [(0, 1), (0, 2), (0, 3), (0, 3)]
                results = service.plan_many(graph, batch)
                for result in results:
                    if result.cost not in legal:
                        errors.append(result.cost)
        finally:
            stop.set()
            update_thread.join()
        assert errors == [], f"mixed-epoch batch answers: {errors[:5]}"

    def test_replay_with_mid_round_updates_serves_no_stale(self):
        graph = make_paper_grid(10, "variance")
        config = ReplayConfig(
            rounds=6,
            queries_per_round=24,
            distinct_pairs=20,
            update_fraction=0.02,
            mid_round_updates=True,
            seed=5,
        )
        report = run_replay(graph, config=config)
        assert report.queries == 6 * 24
        assert report.stale_serves == 0

    def test_quiesced_replay_serves_no_stale(self):
        graph = make_paper_grid(10, "variance")
        report = run_replay(
            graph,
            config=ReplayConfig(rounds=5, queries_per_round=20,
                                distinct_pairs=16, seed=3),
        )
        assert report.stale_serves == 0
        assert report.cache_hits > 0
        assert report.epochs == 4
