"""Compact CSR tier for the in-memory kernel fastpath.

The dict-of-dict ``Graph`` is the right construction substrate —
eager validation, cheap mutation — but the wrong traversal substrate:
every relaxation pays a tuple hash for the neighbor lookup and a dict
probe for the label. This module flattens a graph once into the layout
road-network engines use (Wu et al.'s survey; aequilibrae's compiled
path engine): three contiguous ``array`` vectors

* ``indptr``  — ``indptr[i]:indptr[i+1]`` brackets node *i*'s edges,
* ``indices`` — the neighbor's dense index per edge,
* ``weights`` — the edge cost per edge,

plus an interning table mapping arbitrary hashable node ids to dense
``0..n-1`` indices (``index_of`` / ``node_ids``). Edges appear in
exactly the order ``Graph.neighbors`` yields them and nodes in
``Graph.node_ids`` order, so a search over the CSR form relaxes edges
in the same sequence as the dict form — which is what makes the two
tiers *byte-identical* in paths, costs, and every
:class:`~repro.kernel.result.SearchStats` counter (tests/test_kernel.py
holds the proofs).

Builds are cached per :attr:`Graph.fingerprint`: one entry per graph
``uid``, replaced when a mutation bumps the version, shared process-wide
so the service's estimator pool (landmark table builds run
:func:`sssp`) and its query path reuse one flattening. The cache is
bounded LRU; :func:`cache_stats` feeds ``RouteService.snapshot()``.

The search loops below are the fused fastpath rewritten on flat state:
preallocated distance/predecessor lists and status bytearrays indexed
by dense node index, and an index-based lazy-deletion heap (heap
entries carry ints, so tie-breaking never compares node ids). Counters
are accumulated in locals and written to the ``SearchStats`` once at
the end — except ``observe_frontier``, which is called live per
iteration exactly as the dict loops do, so instrumentation that records
the observation sequence sees identical streams from every tier.
"""

from __future__ import annotations

import heapq
import math
import threading
from array import array
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.exceptions import NodeNotFoundError
from repro.graphs.graph import Graph, NodeId
from repro.kernel.result import RunResult, SearchStats

_INF = math.inf


class CSRGraph:
    """One immutable CSR snapshot of a :class:`Graph` state.

    ``fingerprint`` records the graph state the snapshot was taken
    from; the cache refuses to serve it for any other state.
    """

    __slots__ = (
        "fingerprint",
        "node_count",
        "edge_count",
        "node_ids",
        "index_of",
        "indptr",
        "indices",
        "weights",
        "indptr_list",
        "indices_list",
        "weights_list",
        "_reverse",
    )

    def __init__(self, graph: Graph) -> None:
        self.fingerprint = graph.fingerprint
        node_ids: List[NodeId] = list(graph.node_ids())
        index_of: Dict[NodeId, int] = {
            node_id: i for i, node_id in enumerate(node_ids)
        }
        n = len(node_ids)
        indptr = array("l", [0]) * (n + 1)
        indices = array("l")
        weights = array("d")
        k = 0
        for i, node_id in enumerate(node_ids):
            for v, cost in graph.neighbors(node_id):
                indices.append(index_of[v])
                weights.append(cost)
                k += 1
            indptr[i + 1] = k
        self.node_count = n
        self.edge_count = k
        self.node_ids = node_ids
        self.index_of = index_of
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        # Interpreter-hot-loop views of the same flat vectors. The
        # ``array`` vectors are the canonical compact layout (and what
        # a buffer-protocol consumer would hand to numpy or a compiled
        # kernel), but ``array.__getitem__`` boxes a fresh object on
        # every access; the interned list views return the same stored
        # objects by pointer, which is what the pure-Python loops
        # index. Built once per fingerprint alongside the arrays.
        self.indptr_list = list(indptr)
        self.indices_list = list(indices)
        self.weights_list = list(weights)
        self._reverse = None

    def reverse_lists(self):
        """The transpose as flat lists: ``(rindptr, rindices, rweights)``.

        ``rindptr[v]:rindptr[v+1]`` brackets node *v*'s **incoming**
        edges; ``rindices`` holds the source's dense index and
        ``rweights`` the edge cost. Built lazily by counting sort on
        first use (the bidirectional fused loop is the only consumer)
        and cached on the snapshot — the snapshot is immutable, so the
        transpose can never go stale, and a racing double build is
        idempotent.
        """
        if self._reverse is None:
            n = self.node_count
            indptr = self.indptr_list
            indices = self.indices_list
            weights = self.weights_list
            counts = [0] * (n + 1)
            for v in indices:
                counts[v + 1] += 1
            for i in range(n):
                counts[i + 1] += counts[i]
            fill = counts[:n]
            rindices = [0] * self.edge_count
            rweights = [0.0] * self.edge_count
            for u in range(n):
                for k in range(indptr[u], indptr[u + 1]):
                    v = indices[k]
                    p = fill[v]
                    rindices[p] = u
                    rweights[p] = weights[k]
                    fill[v] = p + 1
            self._reverse = (counts, rindices, rweights)
        return self._reverse

    def __repr__(self) -> str:
        return (
            f"CSRGraph(nodes={self.node_count}, edges={self.edge_count}, "
            f"fingerprint={self.fingerprint})"
        )


# ----------------------------------------------------------------------
# fingerprint-keyed build cache
# ----------------------------------------------------------------------
_cache_lock = threading.Lock()
_cache: "OrderedDict[int, CSRGraph]" = OrderedDict()
_cache_capacity = 32
_stats = {
    "hits": 0,
    "misses": 0,
    "builds": 0,
    "invalidations": 0,
    "evictions": 0,
}


def csr_for(graph: Graph) -> CSRGraph:
    """Return the cached CSR form of ``graph``'s current state.

    Keyed by ``graph.uid`` with the fingerprint checked on every hit:
    a mutation (version bump) makes the cached entry unservable and the
    next call rebuilds. A build that races a cost epoch (the fingerprint
    moved, or an epoch is mid-apply) is returned to its caller — whose
    optimistic retry at the service layer will discard the run — but
    never cached.
    """
    fingerprint = graph.fingerprint
    uid = fingerprint[0]
    with _cache_lock:
        entry = _cache.get(uid)
        if entry is not None:
            if entry.fingerprint == fingerprint:
                _cache.move_to_end(uid)
                _stats["hits"] += 1
                return entry
            _stats["invalidations"] += 1
        _stats["misses"] += 1
    built = CSRGraph(graph)
    with _cache_lock:
        _stats["builds"] += 1
        if graph.fingerprint == fingerprint and not graph.cost_update_in_progress:
            _cache[uid] = built
            _cache.move_to_end(uid)
            while len(_cache) > _cache_capacity:
                _cache.popitem(last=False)
                _stats["evictions"] += 1
    return built


def clear_cache() -> None:
    """Drop every cached CSR build (used by cold-start benchmarks)."""
    with _cache_lock:
        _cache.clear()


def configure_cache(capacity: int) -> None:
    """Resize the build cache (evicting LRU entries if shrinking)."""
    global _cache_capacity
    if capacity < 1:
        raise ValueError("CSR cache capacity must be >= 1")
    with _cache_lock:
        _cache_capacity = capacity
        while len(_cache) > _cache_capacity:
            _cache.popitem(last=False)
            _stats["evictions"] += 1


def cache_stats() -> Dict[str, int]:
    """Counter view of the build cache (hits/misses/builds/...)."""
    with _cache_lock:
        snap = dict(_stats)
        snap["entries"] = len(_cache)
    return snap


def reset_stats() -> None:
    """Zero the cache counters (entries are untouched; tests use this)."""
    with _cache_lock:
        for name in _stats:
            _stats[name] = 0


# ----------------------------------------------------------------------
# flat-array fused loops
# ----------------------------------------------------------------------
def uniform_cost(graph: Graph, source: NodeId, destination: NodeId) -> RunResult:
    """Dijkstra's single-pair search on the CSR tier (Figure 2)."""
    if source not in graph:
        raise NodeNotFoundError(source)
    if destination not in graph:
        raise NodeNotFoundError(destination)

    csr = csr_for(graph)
    indptr = csr.indptr_list
    indices = csr.indices_list
    weights = csr.weights_list
    s = csr.index_of[source]
    t = csr.index_of[destination]
    n = csr.node_count

    stats = SearchStats()
    observe = stats.observe_frontier
    dist = [_INF] * n
    pred = [-1] * n
    # 0 = unlabelled, 1 = labelled (has a cost), 2 = explored.
    status = bytearray(n)
    dist[s] = 0.0
    status[s] = 1
    counter = 0
    heap = [(0.0, 0, s)]
    pop = heapq.heappop
    push = heapq.heappush
    frontier_size = 1
    frontier_inserts = 1
    iterations = 0
    edges_relaxed = 0
    nodes_updated = 0
    found = False

    while heap:
        g, _, u = pop(heap)
        if status[u] == 2 or g > dist[u]:
            continue  # stale lazy-deletion entry
        frontier_size -= 1
        status[u] = 2
        if u == t:
            found = True
            break
        iterations += 1
        observe(frontier_size)
        start = indptr[u]
        for k in range(start, indptr[u + 1]):
            edges_relaxed += 1
            v = indices[k]
            sv = status[v]
            if sv == 2:
                continue
            candidate = g + weights[k]
            if candidate < dist[v]:
                dist[v] = candidate
                pred[v] = u
                nodes_updated += 1
                counter += 1
                push(heap, (candidate, counter, v))
                if sv == 0:
                    status[v] = 1
                    frontier_size += 1
                    frontier_inserts += 1

    stats.iterations = iterations
    stats.nodes_expanded = iterations
    stats.edges_relaxed = edges_relaxed
    stats.nodes_updated = nodes_updated
    stats.frontier_inserts = frontier_inserts

    result = RunResult(
        source=source,
        destination=destination,
        algorithm="dijkstra",
        stats=stats,
    )
    if found:
        result.path = _walk_predecessors(pred, csr.node_ids, s, t)
        result.cost = dist[t]
        result.found = True
    return result


def best_first(
    graph: Graph,
    source: NodeId,
    destination: NodeId,
    estimator,
    max_iterations: Optional[int] = None,
) -> RunResult:
    """A* on the CSR tier (Figure 3): frontier-only duplicate test.

    Estimates are memoised per dense node index — estimators are pure
    per (graph state, node, destination), so the memo changes no result,
    only the number of ``estimate`` calls. The iteration bound is
    enforced *before* the bounding expansion: a run raises with exactly
    ``limit`` expansions performed, never ``limit + 1``.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    if destination not in graph:
        raise NodeNotFoundError(destination)

    estimator.prepare(graph, destination)

    csr = csr_for(graph)
    indptr = csr.indptr_list
    indices = csr.indices_list
    weights = csr.weights_list
    node_ids = csr.node_ids
    s = csr.index_of[source]
    t = csr.index_of[destination]
    n = csr.node_count

    stats = SearchStats()
    observe = stats.observe_frontier
    estimate = estimator.estimate
    dist = [_INF] * n
    pred = [-1] * n
    h_memo: List[Optional[float]] = [None] * n
    in_frontier = bytearray(n)
    explored = bytearray(n)
    dist[s] = 0.0
    in_frontier[s] = 1
    h_source = estimate(graph, source, destination)
    h_memo[s] = h_source
    counter = 0
    heap = [(h_source, h_source, 0, s, 0.0)]
    pop = heapq.heappop
    push = heapq.heappush
    frontier_size = 1
    frontier_inserts = 1
    iterations = 0
    edges_relaxed = 0
    nodes_updated = 0
    nodes_reopened = 0
    limit = (
        max_iterations
        if max_iterations is not None
        else max(1000, len(graph) * len(graph))
    )
    found = False

    while heap:
        _f, _h, _, u, g_at_push = pop(heap)
        if not in_frontier[u] or g_at_push > dist[u]:
            continue  # stale lazy-deletion entry
        in_frontier[u] = 0
        frontier_size -= 1
        if u == t:
            found = True
            break
        if iterations >= limit:
            stats.iterations = iterations
            stats.nodes_expanded = iterations
            stats.edges_relaxed = edges_relaxed
            stats.nodes_updated = nodes_updated
            stats.nodes_reopened = nodes_reopened
            stats.frontier_inserts = frontier_inserts
            raise RuntimeError(
                f"A* exceeded {limit} iterations; the estimator may be "
                "wildly inconsistent"
            )
        if explored[u]:
            nodes_reopened += 1
        explored[u] = 1
        iterations += 1
        observe(frontier_size)
        g = dist[u]
        start = indptr[u]
        for k in range(start, indptr[u + 1]):
            edges_relaxed += 1
            v = indices[k]
            candidate = g + weights[k]
            if candidate < dist[v]:
                dist[v] = candidate
                pred[v] = u
                nodes_updated += 1
                h_v = h_memo[v]
                if h_v is None:
                    h_v = estimate(graph, node_ids[v], destination)
                    h_memo[v] = h_v
                counter += 1
                push(heap, (candidate + h_v, h_v, counter, v, candidate))
                # Figure 3: re-insert only if not already in the
                # frontier; explored nodes re-enter (reopening).
                if not in_frontier[v]:
                    in_frontier[v] = 1
                    frontier_size += 1
                    frontier_inserts += 1

    stats.iterations = iterations
    stats.nodes_expanded = iterations
    stats.edges_relaxed = edges_relaxed
    stats.nodes_updated = nodes_updated
    stats.nodes_reopened = nodes_reopened
    stats.frontier_inserts = frontier_inserts

    result = RunResult(
        source=source,
        destination=destination,
        algorithm="astar",
        estimator=estimator.name,
        stats=stats,
    )
    if found:
        result.path = _walk_predecessors(pred, node_ids, s, t)
        result.cost = dist[t]
        result.found = True
    return result


def wave(
    graph: Graph,
    source: NodeId,
    destination: NodeId,
    max_iterations: Optional[int] = None,
) -> RunResult:
    """The Iterative algorithm on the CSR tier (Figure 1).

    The wave bound is enforced before a wave begins: a run raises with
    exactly ``limit`` waves performed, never ``limit + 1``.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    if destination not in graph:
        raise NodeNotFoundError(destination)

    csr = csr_for(graph)
    indptr = csr.indptr_list
    indices = csr.indices_list
    weights = csr.weights_list
    s = csr.index_of[source]
    t = csr.index_of[destination]
    n = csr.node_count

    stats = SearchStats()
    observe = stats.observe_frontier
    dist = [_INF] * n
    pred = [-1] * n
    ever_expanded = bytearray(n)
    in_next = bytearray(n)
    dist[s] = 0.0
    current = [s]
    limit = max_iterations if max_iterations is not None else 4 * len(graph) + 4
    iterations = 0
    nodes_expanded = 0
    edges_relaxed = 0
    nodes_updated = 0
    nodes_reopened = 0
    frontier_inserts = 0

    while current:
        if iterations >= limit:
            stats.iterations = iterations
            stats.nodes_expanded = nodes_expanded
            stats.edges_relaxed = edges_relaxed
            stats.nodes_updated = nodes_updated
            stats.nodes_reopened = nodes_reopened
            stats.frontier_inserts = frontier_inserts
            raise RuntimeError(
                f"iterative search exceeded {limit} waves; "
                "graph may have pathological costs"
            )
        iterations += 1
        observe(len(current))
        next_wave: List[int] = []
        for u in current:
            nodes_expanded += 1
            if ever_expanded[u]:
                nodes_reopened += 1
            ever_expanded[u] = 1
            # Sequential in-wave propagation: expand from the current
            # label, which an earlier wave member may have improved.
            base = dist[u]
            start = indptr[u]
            for k in range(start, indptr[u + 1]):
                edges_relaxed += 1
                v = indices[k]
                candidate = base + weights[k]
                if candidate < dist[v]:
                    dist[v] = candidate
                    pred[v] = u
                    nodes_updated += 1
                    if not in_next[v]:
                        next_wave.append(v)
                        in_next[v] = 1
                        frontier_inserts += 1
        for v in next_wave:
            in_next[v] = 0
        current = next_wave

    stats.iterations = iterations
    stats.nodes_expanded = nodes_expanded
    stats.edges_relaxed = edges_relaxed
    stats.nodes_updated = nodes_updated
    stats.nodes_reopened = nodes_reopened
    stats.frontier_inserts = frontier_inserts

    result = RunResult(
        source=source,
        destination=destination,
        algorithm="iterative",
        stats=stats,
    )
    if dist[t] != _INF:
        result.path = _walk_predecessors(pred, csr.node_ids, s, t)
        result.cost = dist[t]
        result.found = True
    return result


def sssp(
    graph: Graph, source: NodeId, cutoff: Optional[float] = None
) -> Dict[NodeId, float]:
    """Single-source distances on the CSR tier (no early termination).

    Returns the same ``{node_id: distance}`` mapping as the dict loop:
    only reached nodes appear, and with ``cutoff`` only those within it.
    """
    if source not in graph:
        raise NodeNotFoundError(source)

    csr = csr_for(graph)
    indptr = csr.indptr_list
    indices = csr.indices_list
    weights = csr.weights_list
    s = csr.index_of[source]
    n = csr.node_count

    dist = [_INF] * n
    settled = bytearray(n)
    dist[s] = 0.0
    heap = [(0.0, 0, s)]
    counter = 1
    pop = heapq.heappop
    push = heapq.heappush

    while heap:
        d, _, u = pop(heap)
        if settled[u]:
            continue
        settled[u] = 1
        if cutoff is not None and d > cutoff:
            continue
        start = indptr[u]
        for k in range(start, indptr[u + 1]):
            v = indices[k]
            nd = d + weights[k]
            if nd < dist[v]:
                dist[v] = nd
                counter += 1
                push(heap, (nd, counter, v))

    node_ids = csr.node_ids
    if cutoff is not None:
        return {
            node_ids[i]: d for i, d in enumerate(dist) if d <= cutoff
        }
    return {node_ids[i]: d for i, d in enumerate(dist) if d != _INF}


def sssp_tree(
    graph: Graph, source: NodeId
) -> "Tuple[CSRGraph, List[float], List[int]]":
    """One-to-all Dijkstra with predecessor retention on the CSR tier.

    Returns ``(csr, dist, pred)`` over dense node indexes: ``dist[i]``
    is the shortest-path cost from ``source`` to ``csr.node_ids[i]``
    (``inf`` when unreachable) and ``pred[i]`` the dense index of the
    predecessor on that path (``-1`` for the source and unreached
    nodes). Relaxations run in exactly the order :func:`sssp` uses, so
    the distances are bit-identical to the cutoff-free :func:`sssp`
    mapping and the tree path to any settled node is the same route
    :func:`uniform_cost` returns for the pair — the property the skim
    subsystem's exactness audit leans on.
    """
    if source not in graph:
        raise NodeNotFoundError(source)

    csr = csr_for(graph)
    indptr = csr.indptr_list
    indices = csr.indices_list
    weights = csr.weights_list
    s = csr.index_of[source]
    n = csr.node_count

    dist = [_INF] * n
    pred = [-1] * n
    settled = bytearray(n)
    dist[s] = 0.0
    heap = [(0.0, 0, s)]
    counter = 1
    pop = heapq.heappop
    push = heapq.heappush

    while heap:
        d, _, u = pop(heap)
        if settled[u]:
            continue
        settled[u] = 1
        start = indptr[u]
        for k in range(start, indptr[u + 1]):
            v = indices[k]
            nd = d + weights[k]
            if nd < dist[v]:
                dist[v] = nd
                pred[v] = u
                counter += 1
                push(heap, (nd, counter, v))

    return csr, dist, pred


def bidirectional(
    graph: Graph, source: NodeId, destination: NodeId
) -> RunResult:
    """Bidirectional Dijkstra on the CSR tier.

    Runs Dijkstra simultaneously from the source over the forward CSR
    arrays and from the destination over the lazily built transpose
    (:meth:`CSRGraph.reverse_lists`), alternating by smaller frontier
    key, and stops when ``fmin + bmin >= best`` certifies no better
    meeting point exists. Same termination rule, same counter
    accounting (one ``iterations``/``nodes_expanded`` per settle,
    merged across directions) as the historical dict implementation in
    :mod:`repro.kernel.fastpath`.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    if destination not in graph:
        raise NodeNotFoundError(destination)

    stats = SearchStats()
    result = RunResult(
        source=source,
        destination=destination,
        algorithm="bidirectional",
        stats=stats,
    )
    if source == destination:
        result.path = [source]
        result.cost = 0.0
        result.found = True
        return result

    csr = csr_for(graph)
    indptr = csr.indptr_list
    indices = csr.indices_list
    weights = csr.weights_list
    rindptr, rindices, rweights = csr.reverse_lists()
    s = csr.index_of[source]
    t = csr.index_of[destination]
    n = csr.node_count

    fdist = [_INF] * n
    bdist = [_INF] * n
    fpred = [-1] * n
    bpred = [-1] * n
    fsettled = bytearray(n)
    bsettled = bytearray(n)
    fdist[s] = 0.0
    bdist[t] = 0.0
    fheap = [(0.0, 0, s)]
    bheap = [(0.0, 0, t)]
    counter = 1
    pop = heapq.heappop
    push = heapq.heappush

    iterations = 0
    edges_relaxed = 0
    nodes_updated = 0
    frontier_inserts = 2  # both roots enter their frontier

    best = _INF
    meeting = -1

    def min_key(heap, dist, settled):
        while heap:
            d, _, u = heap[0]
            if settled[u] or d > dist[u]:
                pop(heap)
                continue
            return d
        return _INF

    while True:
        fmin = min_key(fheap, fdist, fsettled)
        bmin = min_key(bheap, bdist, bsettled)
        if fmin + bmin >= best or (fmin == _INF and bmin == _INF):
            break
        if fmin <= bmin:
            heap, dist, pred, settled = fheap, fdist, fpred, fsettled
            adj_ptr, adj_idx, adj_w = indptr, indices, weights
        else:
            heap, dist, pred, settled = bheap, bdist, bpred, bsettled
            adj_ptr, adj_idx, adj_w = rindptr, rindices, rweights
        settled_node = -1
        while heap:
            d, _, u = pop(heap)
            if settled[u] or d > dist[u]:
                continue
            settled[u] = 1
            iterations += 1
            for k in range(adj_ptr[u], adj_ptr[u + 1]):
                edges_relaxed += 1
                v = adj_idx[k]
                if settled[v]:
                    continue
                candidate = d + adj_w[k]
                if candidate < dist[v]:
                    if dist[v] == _INF:
                        frontier_inserts += 1
                    dist[v] = candidate
                    pred[v] = u
                    nodes_updated += 1
                    push(heap, (candidate, counter, v))
                    counter += 1
            settled_node = u
            break
        if settled_node == -1:
            break
        # A meeting can occur at the settled node or at any labelled-
        # but-unsettled forward neighbor of it (same rule as the dict
        # implementation, so both realisations stop on the same state).
        total = fdist[settled_node] + bdist[settled_node]
        if total < best:
            best = total
            meeting = settled_node
        for k in range(indptr[settled_node], indptr[settled_node + 1]):
            v = indices[k]
            total = fdist[v] + bdist[v]
            if total < best:
                best = total
                meeting = v

    stats.iterations = iterations
    stats.nodes_expanded = iterations
    stats.edges_relaxed = edges_relaxed
    stats.nodes_updated = nodes_updated
    stats.frontier_inserts = frontier_inserts

    if meeting == -1 or best == _INF:
        return result

    node_ids = csr.node_ids
    forward_half = _walk_predecessors(fpred, node_ids, s, meeting)
    path = forward_half
    u = meeting
    while u != t:
        u = bpred[u]
        assert u != -1, "meeting point settled without a backward label"
        path.append(node_ids[u])
    result.path = path
    result.cost = best
    result.found = True
    return result


def _walk_predecessors(
    pred: List[int], node_ids: List[NodeId], s: int, t: int
) -> List[NodeId]:
    """Materialise the node-id path from the flat predecessor array."""
    path = [node_ids[t]]
    u = t
    while u != s:
        u = pred[u]
        assert u != -1, "destination settled without a path label"
        path.append(node_ids[u])
    path.reverse()
    return path
