"""Pinned batch-OD trajectory: skim amortization, select-link, assignment.

Runs the :mod:`repro.experiments.demandbench` harness piece by piece
(fixed grid, seed, zone sets, demand matrix, and epoch sweeps — see
``DemandBenchConfig``) and writes the full report to
``BENCH_demand.json`` at the repo root, so successive commits can be
compared on skim amortization *and* assignment convergence.

Each test contributes its pieces to the shared report; the emitter
only writes when every scenario ran, every epoch was audited, the
assignment converged, and the exactness audit found zero
disagreements with dict-tier Dijkstra — an interrupted, filtered, or
*wrong* run can never overwrite a complete report. The amortization
test asserts the floor CI enforces: skimming the matrix must beat
answering it as independent point queries.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.demandbench import (
    EXPECTED_SCENARIOS,
    DemandBenchConfig,
    DemandBenchReport,
    run_demand_bench,
)

pytestmark = pytest.mark.demand

_CONFIG = DemandBenchConfig()
_REPORT = DemandBenchReport(config=_CONFIG)


@pytest.fixture(scope="module", autouse=True)
def _emit_report_json():
    yield
    if _REPORT.complete and _REPORT.clean:
        path = Path(__file__).resolve().parent.parent / "BENCH_demand.json"
        path.write_text(_REPORT.to_json() + "\n")


def test_demand_skim_scenarios():
    """dict vs CSR skims vs pointwise queries, audited bit-exact.

    Asserts the amortization floor: one SSSP per origin must beat
    |O| x |D| independent point Dijkstras on the same tier, and every
    cell, path, and select-link flow must agree exactly with the
    independent dict-tier loops.
    """
    partial = run_demand_bench(
        _CONFIG, with_epochs=False, with_assignment=False
    )
    _REPORT.timings.update(partial.timings)
    _REPORT.cells_checked = partial.cells_checked
    _REPORT.inexact_cells = partial.inexact_cells
    _REPORT.paths_checked = partial.paths_checked
    _REPORT.inexact_paths = partial.inexact_paths
    _REPORT.links_checked = partial.links_checked
    _REPORT.link_mismatches = partial.link_mismatches
    _REPORT.unreachable_cells = partial.unreachable_cells
    assert partial.inexact_cells == 0
    assert partial.inexact_paths == 0
    assert partial.link_mismatches == 0
    assert partial.cells_checked == _CONFIG.origins * _CONFIG.destinations
    assert partial.links_checked == _CONFIG.links
    speedup = _REPORT.speedup("pointwise/csr", "skim/csr")
    print()
    print(f"pinned OD matrix: skim is {speedup:.2f}x the pointwise batch")
    assert speedup > 1.0


def test_demand_epoch_audit():
    """Re-skim and re-audit after every pinned traffic epoch.

    Every cell must re-agree (``==``) with a fresh whole-graph
    dict-tier SSSP per origin on the updated costs, every retained
    path must re-price to its cell, and every select-link flow table
    must match brute-force per-pair path membership.
    """
    partial = run_demand_bench(
        _CONFIG, scenarios=(), with_epochs=True, with_assignment=False
    )
    _REPORT.epochs.extend(partial.epochs)
    assert len(partial.epochs) == _CONFIG.epochs
    for epoch in partial.epochs:
        assert epoch.deltas > 0
        assert epoch.inexact_cells == 0
        assert epoch.inexact_paths == 0
        assert epoch.link_mismatches == 0


def test_demand_assignment_convergence():
    """The pinned Frank-Wolfe run: converged, audited, conserving.

    Every iteration's prices are audited against dict-tier Dijkstra
    and every iteration's volumes against node-level demand
    conservation; the run must reach the relative-gap criterion within
    the pinned iteration cap.
    """
    partial = run_demand_bench(
        _CONFIG, scenarios=(), with_epochs=False, with_assignment=True
    )
    a = partial.assignment
    _REPORT.assignment = a
    assert a.ran
    assert a.converged, (
        f"gap {a.relative_gap:.3e} after {a.iterations} iterations"
    )
    assert a.relative_gap < _CONFIG.tolerance
    assert a.audited_iterations == a.iterations
    assert a.inexact_cells == 0
    assert a.max_conservation_residual < 1e-6 * max(1.0, a.demand_total)
    assert a.epochs_applied >= a.iterations - 1


def test_demand_report_complete():
    """Runs last: the module produced every piece and valid JSON."""
    assert _REPORT.complete, _REPORT.missing
    assert _REPORT.clean
    payload = json.loads(_REPORT.to_json())
    assert set(payload["scenarios"]) == set(EXPECTED_SCENARIOS)
    assert payload["speedups"]["skim_vs_pointwise"] > 1.0
    assert payload["assignment"]["converged"] is True
    assert payload["assignment"]["relative_gap"] < _CONFIG.tolerance
    assert payload["audit"]["inexact"] == 0
