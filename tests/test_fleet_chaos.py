"""Chaos harness: exact-or-flagged under faults, kills, and epochs."""

import json

import pytest

from repro.cli import main
from repro.experiments.fleetchaos import (
    FleetChaosConfig,
    FleetChaosReport,
    FleetChaosRun,
    run_chaos_replay,
    run_fleet_chaos,
)

pytestmark = pytest.mark.fleetchaos

# Smaller than the pinned benchmark workload but the same 10% fault
# mix and kill shape; the timing margins that make the replay
# deterministic are preserved (hang >> stage budget >> hedge >> the
# microseconds a shard task actually computes for).
_CFG = FleetChaosConfig(
    grid=8,
    queries=96,
    rounds=3,
    epoch_edges=12,
    kills=((1, 0),),
    hang_s=0.25,
    total_s=0.6,
    stage_s=0.12,
    hedge_s=0.03,
)

# Fault-free variant for the determinism / noop-equivalence checks.
_QUIET = FleetChaosConfig(
    grid=6,
    queries=48,
    rounds=2,
    epoch_edges=8,
    kills=(),
    error_rate=0.0,
    latency_rate=0.0,
    hang_rate=0.0,
)

# Tiny faulted config for the same-seed byte-identity check (two full
# replays; keep each one cheap).
_DET = FleetChaosConfig(
    grid=6,
    queries=40,
    rounds=2,
    epoch_edges=8,
    kills=((1, 0),),
    hang_s=0.25,
    total_s=0.6,
    stage_s=0.12,
    hedge_s=0.03,
)


@pytest.fixture(scope="module")
def chaos_report():
    return run_fleet_chaos(_CFG)


class TestChaosAudit:
    def test_audit_clean_at_ten_percent_fault_rate(self, chaos_report):
        assert _CFG.total_fault_rate == pytest.approx(0.10)
        assert chaos_report.complete
        assert chaos_report.clean
        for run in (chaos_report.replicated, chaos_report.baseline):
            assert run.inexact == 0, run.inexact_samples
            assert run.stale_serves == 0
            # Zero silent drops: every query answered or flagged.
            assert run.answered + run.shed == run.queries
        assert chaos_report.replicated.kills == len(_CFG.kills)

    def test_replication_buys_availability_under_identical_failure(
        self, chaos_report
    ):
        assert chaos_report.availability_gain > 0
        assert (
            chaos_report.replicated.availability
            > chaos_report.baseline.availability
        )

    def test_fault_machinery_was_actually_exercised(self, chaos_report):
        run = chaos_report.replicated
        # A chaos audit that injected nothing proved nothing.
        assert run.retries + run.failovers + run.hedged > 0
        injected = sum(
            snap["faults_injected"]
            for name, snap in run.snapshot.items()
            if name != "fleet"
        )
        assert injected > 0

    def test_json_round_trip(self, chaos_report):
        payload = json.loads(chaos_report.to_json())
        assert payload["availability_gain"] > 0
        assert payload["faults"]["total_rate"] == pytest.approx(0.10)
        for name in ("replicated", "baseline"):
            summary = payload["runs"][name]["summary"]
            assert summary["inexact"] == 0
            assert summary["stale_serves"] == 0
            assert summary["clean"] == 1


class TestDeterminism:
    def test_same_seed_replays_are_byte_identical(self):
        first = run_chaos_replay(_DET, replicas=2)
        second = run_chaos_replay(_DET, replicas=2)
        assert first.determinism_key == second.determinism_key
        assert first.answered == second.answered
        assert first.shed == second.shed

    def test_rate_zero_plan_matches_no_injector_fleet(self):
        with_noop_plans = run_chaos_replay(
            _QUIET, replicas=2, attach_plans=True
        )
        bare = run_chaos_replay(_QUIET, replicas=2, attach_plans=False)
        assert (
            with_noop_plans.determinism_key == bare.determinism_key
        )
        # A fault-free fleet never needed the ladder at all.
        for run in (with_noop_plans, bare):
            assert run.shed == 0
            assert run.hedged == 0
            assert run.retries == 0
            assert run.failovers == 0
            assert run.availability == 1.0


class TestReportGuards:
    def test_refuses_partial_report(self):
        report = FleetChaosReport(config=_QUIET)
        with pytest.raises(ValueError, match="partial"):
            report.to_json()

    def test_refuses_inexact_report(self):
        report = FleetChaosReport(
            config=_QUIET,
            replicated=FleetChaosRun(
                replicas=2, queries=10, answered=10, inexact=1
            ),
            baseline=FleetChaosRun(replicas=1, queries=10, answered=10),
        )
        assert not report.clean
        with pytest.raises(ValueError, match="inexact"):
            report.to_json()

    def test_refuses_silent_drops(self):
        report = FleetChaosReport(
            config=_QUIET,
            replicated=FleetChaosRun(replicas=2, queries=10, answered=9),
            baseline=FleetChaosRun(replicas=1, queries=10, answered=10),
        )
        with pytest.raises(ValueError, match="silent drops"):
            report.to_json()

    def test_refuses_missing_availability_gain(self):
        config = FleetChaosConfig(kills=((1, 0),))
        report = FleetChaosReport(
            config=config,
            replicated=FleetChaosRun(replicas=2, queries=10, answered=8, shed=2),
            baseline=FleetChaosRun(replicas=1, queries=10, answered=8, shed=2),
        )
        with pytest.raises(ValueError, match="no availability"):
            report.to_json()


class TestCli:
    def test_rejects_malformed_kills(self, capsys):
        assert main(["bench-fleet-chaos", "--kills", "bogus"]) == 1
        assert "bad --kills" in capsys.readouterr().err
