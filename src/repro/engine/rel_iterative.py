"""Relational execution of the Iterative algorithm — Table 2's 8 steps.

One *iteration* is one wave of the outer loop:

5. fetch all current nodes (a scan of R);
6. join them with S to fetch every adjacency list at once — this is
   where the Iterative algorithm differs most from the best-first
   family, because its outer join input holds *many* current nodes, so
   the optimizer frequently prefers a hash or nested-loop plan over
   per-tuple index probes;
7. apply the label improvements and flip statuses (current -> closed,
   newly-opened -> current);
8. scan R to count the surviving current nodes (the termination test).

The algorithm runs until no current nodes remain — it cannot stop at
the destination (Lemma 1 gives optimality only at full exploration),
which is exactly why its iteration count is path-length-insensitive.
"""

from __future__ import annotations

from typing import Optional

from repro.exceptions import NodeNotFoundError, PlannerError
from repro.graphs.graph import NodeId
from repro.engine.relational_graph import RelationalGraph
from repro.engine.tracing import IterationRecord, RelationalRunResult
from repro.storage.schema import (
    STATUS_CLOSED,
    STATUS_CURRENT,
    STATUS_NULL,
    STATUS_OPEN,
)


def run_iterative(
    rgraph: RelationalGraph,
    source: NodeId,
    destination: NodeId,
    max_iterations: Optional[int] = None,
) -> RelationalRunResult:
    """Execute the Iterative BFS as a database program."""
    graph = rgraph.graph
    if source not in graph:
        raise NodeNotFoundError(source)
    if destination not in graph:
        raise NodeNotFoundError(destination)

    stats = rgraph.stats
    stats.reset()
    # Absorb any traffic epochs first: the run must price this epoch's
    # costs, and the re-fetch I/O is part of this run's bill.
    rgraph.sync()

    with stats.phase("init"):
        R = rgraph.fresh_node_relation(populate=True)  # C1-C3
        # C4: mark the start node current via a keyed replace.
        rid = R.isam.probe(source)
        if rid is None:
            raise PlannerError(f"source {source!r} missing from R")
        row = dict(R.read(rid))
        row.update(status=STATUS_CURRENT, path_cost=0.0, path=None)
        R.heap.update(rid, row)

    result = RelationalRunResult(
        algorithm="iterative",
        variant="status-attribute",
        source=source,
        destination=destination,
        io=stats,
    )
    limit = max_iterations if max_iterations is not None else 4 * len(graph) + 4

    while True:
        with stats.phase("iterate"):
            # Step 5: fetch all current nodes (scan of R).
            current = [
                dict(values)
                for _rid, values in R.scan()
                if values["status"] == STATUS_CURRENT
            ]
            if not current:
                break
            result.iterations += 1
            if result.iterations > limit:
                raise PlannerError(
                    f"relational iterative exceeded {limit} waves"
                )

            # Step 6: one join fetches every current node's adjacency list.
            joined, plan = rgraph.adjacency_join(current)

            # Reduce the join result to the best improvement per
            # neighbor (CPU work on the materialised join output).
            best_improvement = {}
            for path_tuple in joined:
                neighbor = repr(path_tuple["end"])
                new_cost = path_tuple["path_cost"] + path_tuple["cost"]
                prior = best_improvement.get(neighbor)
                if prior is None or new_cost < prior[0]:
                    best_improvement[neighbor] = (
                        new_cost,
                        path_tuple["node_id"],
                    )

            # Step 7: one set-oriented REPLACE pass applies the label
            # improvements and flips statuses (current -> closed,
            # improved -> current for the next wave). This is the
            # paper's batch update charged at 2 * B_r * t_update.
            updates = 0

            def flip(values):
                nonlocal updates
                improvement = best_improvement.get(repr(values["node_id"]))
                improved = (
                    improvement is not None
                    and values["path_cost"] > improvement[0]
                )
                if improved:
                    values = dict(values)
                    values["path_cost"], values["path"] = improvement
                    values["status"] = STATUS_CURRENT
                    updates += 1
                    return values
                if values["status"] == STATUS_CURRENT:
                    values = dict(values)
                    values["status"] = STATUS_CLOSED
                    return values
                return None

            R.heap.batch_update(flip)

            # Step 8: scan R to count current nodes (termination test).
            count = sum(
                1
                for _rid, values in R.scan()
                if values["status"] == STATUS_CURRENT
            )

            result.trace.append(
                IterationRecord(
                    index=result.iterations,
                    expanded_nodes=len(current),
                    join_result_tuples=len(joined),
                    join_strategy=plan.strategy_name,
                    updates_applied=updates,
                    frontier_size_after=count,
                    cumulative_cost=stats.cost,
                )
            )

    with stats.phase("cleanup"):
        label = R.fetch_by_key(destination)
        if label is not None and label["path_cost"] != float("inf"):
            result.found = True
            result.cost = label["path_cost"]
            result.path = _walk_pointers(R, source, destination, len(graph))
        rgraph.drop_node_relation(R)

    result.init_cost = stats.phase_cost("init")
    result.iteration_cost = stats.phase_cost("iterate")
    result.cleanup_cost = stats.phase_cost("cleanup")
    result.sync_cost = stats.phase_cost("traffic-sync")
    return result


def _walk_pointers(R, source: NodeId, destination: NodeId, node_count: int) -> list:
    path = [destination]
    current = destination
    hops = 0
    while current != source:
        label = R.fetch_by_key(current)
        if label is None or label["path"] is None:
            raise PlannerError(f"path pointer chain broken at {current!r}")
        current = label["path"]
        path.append(current)
        hops += 1
        if hops > node_count + 1:
            raise PlannerError("path pointer chain exceeds node count")
    path.reverse()
    return path
