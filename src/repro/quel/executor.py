"""Mini-QUEL execution over the simulated database.

A :class:`QuelSession` holds the range-variable bindings and routes
each parsed statement to the storage/query layers:

* single-variable RETRIEVE uses the selection strategies of
  :mod:`repro.query.select` (index probe when the qualification pins an
  indexed field to a literal, full scan otherwise);
* two-variable RETRIEVE locates an equi-join comparison in the
  qualification and runs it through the cost-based optimizer — the same
  F(B1, B2, B3) machinery the engine's algorithms use;
* REPLACE with a keyed qualification goes through the ISAM index (the
  cheap REPLACE the paper contrasts with APPEND + DELETE);
* all I/O lands on the session database's statistics ledger.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import QueryError
from repro.query.optimizer import execute_join
from repro.query.predicates import FieldEquals
from repro.query.select import select as select_rows
from repro.storage.database import Database
from repro.storage.relation import Relation
from repro.storage.schema import ANY, Field, Schema
from repro.quel.parser import (
    AppendStmt,
    BinaryOp,
    BoolOp,
    Comparison,
    DeleteStmt,
    Expr,
    FieldRef,
    Literal,
    NotOp,
    Qual,
    RangeStmt,
    ReplaceStmt,
    RetrieveStmt,
    Statement,
    parse_statement,
)


class QuelError(QueryError):
    """Raised for semantic errors (unknown variables, bad joins, ...)."""


Row = Dict[str, object]
Env = Dict[str, Row]

_COMPARATORS: Dict[str, Callable[[object, object], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _evaluate(expr: Expr, env: Env) -> object:
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, FieldRef):
        row = env.get(expr.variable)
        if row is None:
            raise QuelError(f"range variable {expr.variable!r} not in scope")
        if expr.field not in row:
            raise QuelError(
                f"{expr.variable}.{expr.field}: no such field "
                f"(has {sorted(row)})"
            )
        return row[expr.field]
    if isinstance(expr, BinaryOp):
        left = _evaluate(expr.left, env)
        right = _evaluate(expr.right, env)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return left / right
    raise QuelError(f"cannot evaluate expression {expr!r}")


def _holds(qual: Qual, env: Env) -> bool:
    if isinstance(qual, Comparison):
        left = _evaluate(qual.left, env)
        right = _evaluate(qual.right, env)
        try:
            return _COMPARATORS[qual.op](left, right)
        except TypeError:
            # Mixed-type ordering: only (in)equality is meaningful.
            if qual.op == "=":
                return left == right
            if qual.op == "!=":
                return left != right
            raise QuelError(
                f"cannot order {left!r} against {right!r}"
            ) from None
    if isinstance(qual, BoolOp):
        if qual.op == "and":
            return all(_holds(part, env) for part in qual.parts)
        return any(_holds(part, env) for part in qual.parts)
    if isinstance(qual, NotOp):
        return not _holds(qual.part, env)
    raise QuelError(f"cannot evaluate qualification {qual!r}")


def _variables_in_expr(expr: Expr) -> set:
    if isinstance(expr, FieldRef):
        return {expr.variable}
    if isinstance(expr, BinaryOp):
        return _variables_in_expr(expr.left) | _variables_in_expr(expr.right)
    return set()


def _variables_in_qual(qual: Optional[Qual]) -> set:
    if qual is None:
        return set()
    if isinstance(qual, Comparison):
        return _variables_in_expr(qual.left) | _variables_in_expr(qual.right)
    if isinstance(qual, BoolOp):
        result = set()
        for part in qual.parts:
            result |= _variables_in_qual(part)
        return result
    if isinstance(qual, NotOp):
        return _variables_in_qual(qual.part)
    return set()


def _conjuncts(qual: Optional[Qual]) -> List[Qual]:
    if qual is None:
        return []
    if isinstance(qual, BoolOp) and qual.op == "and":
        result: List[Qual] = []
        for part in qual.parts:
            result.extend(_conjuncts(part))
        return result
    return [qual]


class QuelSession:
    """Executes mini-QUEL statements against a database."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self._ranges: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def execute(self, statement: "str | Statement"):
        """Parse (if needed) and run one statement.

        RANGE returns None; RETRIEVE returns the result rows (and the
        temporary relation name for INTO); APPEND/REPLACE/DELETE return
        the number of tuples affected.
        """
        if isinstance(statement, str):
            statement = parse_statement(statement)
        if isinstance(statement, RangeStmt):
            return self._run_range(statement)
        if isinstance(statement, RetrieveStmt):
            return self._run_retrieve(statement)
        if isinstance(statement, AppendStmt):
            return self._run_append(statement)
        if isinstance(statement, ReplaceStmt):
            return self._run_replace(statement)
        if isinstance(statement, DeleteStmt):
            return self._run_delete(statement)
        raise QuelError(f"unsupported statement {statement!r}")

    def execute_script(self, script: str) -> List[object]:
        """Run a newline-separated sequence of statements."""
        results = []
        for line in script.splitlines():
            line = line.strip()
            if not line or line.startswith("--"):
                continue
            results.append(self.execute(line))
        return results

    # ------------------------------------------------------------------
    def _relation_for(self, variable: str) -> Relation:
        try:
            relation_name = self._ranges[variable]
        except KeyError:
            raise QuelError(
                f"no RANGE declared for variable {variable!r}"
            ) from None
        return self.database.relation(relation_name)

    def _run_range(self, statement: RangeStmt) -> None:
        self.database.relation(statement.relation)  # must exist
        self._ranges[statement.variable] = statement.relation
        return None

    # -- RETRIEVE -------------------------------------------------------
    def _run_retrieve(self, statement: RetrieveStmt):
        variables = set()
        for target in statement.targets:
            variables |= _variables_in_expr(target.expr)
        variables |= _variables_in_qual(statement.where)
        if not variables:
            raise QuelError("RETRIEVE must reference at least one variable")
        if len(variables) == 1:
            rows = self._retrieve_single(next(iter(variables)), statement)
        elif len(variables) == 2:
            rows = self._retrieve_join(tuple(sorted(variables)), statement)
        else:
            raise QuelError(
                "RETRIEVE supports at most two range variables, got "
                f"{sorted(variables)}"
            )
        if statement.into:
            name = self._materialize(statement.into, statement.targets, rows)
            return name
        return rows

    def _keyed_literal(
        self, variable: str, qual: Optional[Qual], relation: Relation
    ) -> Optional[Tuple[str, object]]:
        """Find ``variable.field = literal`` over an indexed field."""
        for part in _conjuncts(qual):
            if not isinstance(part, Comparison) or part.op != "=":
                continue
            sides = [part.left, part.right]
            for this, other in (sides, sides[::-1]):
                if (
                    isinstance(this, FieldRef)
                    and this.variable == variable
                    and isinstance(other, Literal)
                ):
                    indexed = (
                        relation.isam is not None
                        and relation.isam.key_field == this.field
                    ) or (
                        relation.hash_index is not None
                        and relation.hash_index.key_field == this.field
                    )
                    if indexed:
                        return (this.field, other.value)
        return None

    def _candidate_rows(
        self, variable: str, qual: Optional[Qual], relation: Relation
    ) -> List[Row]:
        keyed = self._keyed_literal(variable, qual, relation)
        if keyed is not None:
            field_name, value = keyed
            return select_rows(relation, FieldEquals(field_name, value))
        return [dict(values) for _rid, values in relation.scan()]

    def _retrieve_single(self, variable: str, statement: RetrieveStmt) -> List[Row]:
        relation = self._relation_for(variable)
        output: List[Row] = []
        for row in self._candidate_rows(variable, statement.where, relation):
            env = {variable: row}
            if statement.where is None or _holds(statement.where, env):
                output.append(
                    {t.name: _evaluate(t.expr, env) for t in statement.targets}
                )
        return output

    def _join_comparison(
        self, variables: Tuple[str, str], qual: Optional[Qual]
    ) -> Optional[Tuple[FieldRef, FieldRef]]:
        for part in _conjuncts(qual):
            if not isinstance(part, Comparison) or part.op != "=":
                continue
            if isinstance(part.left, FieldRef) and isinstance(part.right, FieldRef):
                if {part.left.variable, part.right.variable} == set(variables):
                    return (part.left, part.right)
        return None

    def _retrieve_join(
        self, variables: Tuple[str, str], statement: RetrieveStmt
    ) -> List[Row]:
        join_fields = self._join_comparison(variables, statement.where)
        if join_fields is None:
            raise QuelError(
                "two-variable RETRIEVE needs an equi-join comparison "
                "(v1.f = v2.g) in the qualification"
            )
        left_ref, right_ref = join_fields
        # The inner (indexed) side is whichever has a hash index on the
        # join field; otherwise an arbitrary but deterministic choice.
        left_relation = self._relation_for(left_ref.variable)
        right_relation = self._relation_for(right_ref.variable)
        inner_ref, outer_ref = right_ref, left_ref
        inner_relation, outer_relation = right_relation, left_relation
        if (
            left_relation.hash_index is not None
            and left_relation.hash_index.key_field == left_ref.field
        ):
            inner_ref, outer_ref = left_ref, right_ref
            inner_relation, outer_relation = left_relation, right_relation

        outer_rows = self._candidate_rows(
            outer_ref.variable, statement.where, outer_relation
        )
        joined, _plan = execute_join(
            outer=outer_rows,
            outer_key=outer_ref.field,
            outer_blocking_factor=outer_relation.blocking_factor,
            inner=inner_relation,
            inner_key=inner_ref.field,
            expected_result_tuples=max(1, len(outer_rows)),
            result_blocking_factor=max(
                1,
                self.database.block_size
                // (outer_relation.tuple_size + inner_relation.tuple_size),
            ),
            stats=self.database.stats,
        )
        output: List[Row] = []
        inner_fields = set(inner_relation.schema.field_names)
        for merged in joined:
            inner_row = {
                name: merged.get(f"inner.{name}", merged.get(name))
                for name in inner_fields
            }
            outer_row = {
                name: merged[name]
                for name in outer_relation.schema.field_names
                if name in merged
            }
            env = {outer_ref.variable: outer_row, inner_ref.variable: inner_row}
            if statement.where is None or _holds(statement.where, env):
                output.append(
                    {t.name: _evaluate(t.expr, env) for t in statement.targets}
                )
        return output

    def _materialize(
        self, name: str, targets: Sequence, rows: List[Row]
    ) -> str:
        schema = Schema(
            name, [Field(target.name, ANY, 8) for target in targets]
        )
        relation = self.database.create_relation(schema, name=name)
        relation.bulk_load(rows)
        return name

    # -- mutations -------------------------------------------------------
    def _run_append(self, statement: AppendStmt) -> int:
        relation = self.database.relation(statement.relation)
        values = {
            name: _evaluate(expr, {}) for name, expr in statement.assignments
        }
        relation.insert(values)
        return 1

    def _run_replace(self, statement: ReplaceStmt) -> int:
        relation = self._relation_for(statement.variable)
        variable = statement.variable
        keyed = None
        if relation.isam is not None:
            keyed = self._keyed_literal(variable, statement.where, relation)
            if keyed is not None and keyed[0] != relation.isam.key_field:
                keyed = None
        affected = 0
        if keyed is not None:
            # Keyed REPLACE: one ISAM descent, conditional update.
            rid = relation.isam.probe(keyed[1])
            if rid is None:
                return 0
            row = dict(relation.read(rid))
            env = {variable: row}
            if statement.where is not None and not _holds(statement.where, env):
                return 0
            for name, expr in statement.assignments:
                row[name] = _evaluate(expr, env)
            relation.heap.update(rid, row)
            return 1
        for rid, values in list(relation.scan()):
            env = {variable: dict(values)}
            if statement.where is None or _holds(statement.where, env):
                row = dict(values)
                for name, expr in statement.assignments:
                    row[name] = _evaluate(expr, env)
                relation.heap.update(rid, row)
                affected += 1
        return affected

    def _run_delete(self, statement: DeleteStmt) -> int:
        relation = self._relation_for(statement.variable)
        affected = 0
        for rid, values in list(relation.scan()):
            env = {statement.variable: dict(values)}
            if statement.where is None or _holds(statement.where, env):
                relation.delete(rid)
                affected += 1
        return affected
