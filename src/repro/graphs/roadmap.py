"""Synthetic Minneapolis road map — substitute for the paper's data set.

The paper's map (Section 5.2) is proprietary MnDOT data: "1089 nodes
and 3300 edges that represented highway and freeway segments for a
20-square-mile section of the Minneapolis area", with

* a dense downtown core whose streets "are not parallel to the x or y
  axis",
* grid-like outlying areas,
* lakes interrupting the lower-left corner,
* the Mississippi river flowing "north to southeast in the upper right
  quadrant" (crossable only at bridges),
* one-way freeway segments making the graph directed,
* edge cost = distance between endpoints.

This generator reproduces each of those structural properties
deterministically from a seed:

1. a 33 x 33 jittered lattice (exactly 1089 nodes) over a ~4.6-mile
   square;
2. the central block rotated ~28 degrees and compressed (downtown);
3. nodes inside the lake disk displaced radially to its shore
   (roads bend around water; connectivity is preserved);
4. lattice edges crossing the river band removed except at three
   bridges;
5. random thinning of non-spanning-tree edges down to the paper's
   ~3300 directed-edge budget (connectivity always preserved);
6. two freeway corridors whose segments are one-way (directed).

Every segment carries road attributes (type, speed limit, average
occupancy) mirroring the fields the paper lists, which the route
evaluation extension consumes.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.graphs.graph import Graph, NodeId

#: Lattice dimension: 33 x 33 = 1089 nodes, the paper's node count.
LATTICE = 33
#: Map side length in miles (about a 20-square-mile section).
SIDE_MILES = 4.6
#: Target directed edge count (the paper's 3300).
TARGET_DIRECTED_EDGES = 3300

GridCoord = Tuple[int, int]


@dataclass(frozen=True)
class RoadAttributes:
    """Per-segment attributes per the paper's data description."""

    road_type: str  # "freeway", "downtown", "arterial"
    speed_mph: float
    occupancy: float  # average occupancy fraction in [0, 1]


@dataclass
class MinneapolisMap:
    """The generated map: graph + named landmarks + segment attributes."""

    graph: Graph
    landmarks: Dict[str, NodeId]
    attributes: Dict[Tuple[NodeId, NodeId], RoadAttributes] = field(
        default_factory=dict
    )
    seed: int = 1993

    def landmark(self, name: str) -> NodeId:
        try:
            return self.landmarks[name]
        except KeyError:
            raise KeyError(
                f"unknown landmark {name!r}; known: "
                f"{', '.join(sorted(self.landmarks))}"
            ) from None

    def segment_attributes(self, u: NodeId, v: NodeId) -> RoadAttributes:
        key = (u, v) if (u, v) in self.attributes else (v, u)
        return self.attributes[key]


# ----------------------------------------------------------------------
# geometry helpers
# ----------------------------------------------------------------------
_SPACING = SIDE_MILES / (LATTICE - 1)
_CENTER = (SIDE_MILES * 0.5, SIDE_MILES * 0.5)
_DOWNTOWN_RADIUS = SIDE_MILES * 0.18
_DOWNTOWN_ANGLE = math.radians(28.0)
_LAKE_CENTER = (SIDE_MILES * 0.16, SIDE_MILES * 0.18)
_LAKE_RADIUS = SIDE_MILES * 0.11


def _river_offset(y: float) -> float:
    """x-position of the river at height y (north to southeast).

    The river enters at the top middle-right and slides east as it
    flows south, occupying the upper-right quadrant.
    """
    top = SIDE_MILES
    return SIDE_MILES * 0.62 + 0.45 * (top - y)


def _in_river_band(x: float, y: float) -> bool:
    if y < SIDE_MILES * 0.45:
        return False
    return abs(x - _river_offset(y)) < SIDE_MILES * 0.035


def _node_position(row: int, col: int, rng: random.Random) -> Tuple[float, float]:
    """Jittered lattice position with downtown rotation and lake push."""
    x = col * _SPACING + rng.uniform(-0.18, 0.18) * _SPACING
    y = row * _SPACING + rng.uniform(-0.18, 0.18) * _SPACING

    # Downtown: rotate and compress around the center.
    dx, dy = x - _CENTER[0], y - _CENTER[1]
    distance = math.hypot(dx, dy)
    if distance < _DOWNTOWN_RADIUS:
        blend = 1.0 - distance / _DOWNTOWN_RADIUS  # 1 at center, 0 at rim
        angle = _DOWNTOWN_ANGLE * blend
        cos_a, sin_a = math.cos(angle), math.sin(angle)
        rx = dx * cos_a - dy * sin_a
        ry = dx * sin_a + dy * cos_a
        shrink = 1.0 - 0.25 * blend
        x = _CENTER[0] + rx * shrink
        y = _CENTER[1] + ry * shrink

    # Lake: push nodes inside the disk out to the shore.
    lx, ly = x - _LAKE_CENTER[0], y - _LAKE_CENTER[1]
    lake_distance = math.hypot(lx, ly)
    if lake_distance < _LAKE_RADIUS:
        if lake_distance < 1e-9:
            lx, ly, lake_distance = _LAKE_RADIUS, 0.0, _LAKE_RADIUS
        scale = (_LAKE_RADIUS * 1.02) / lake_distance
        x = _LAKE_CENTER[0] + lx * scale
        y = _LAKE_CENTER[1] + ly * scale
    return x, y


def _is_downtown(x: float, y: float) -> bool:
    return math.hypot(x - _CENTER[0], y - _CENTER[1]) < _DOWNTOWN_RADIUS


# ----------------------------------------------------------------------
# generator
# ----------------------------------------------------------------------
def make_minneapolis_map(seed: int = 1993) -> MinneapolisMap:
    """Generate the synthetic Minneapolis map (deterministic per seed)."""
    rng = random.Random(seed)
    positions: Dict[GridCoord, Tuple[float, float]] = {}
    for row in range(LATTICE):
        for col in range(LATTICE):
            positions[(row, col)] = _node_position(row, col, rng)

    # Freeway corridors: two row corridors and the matching return lanes.
    freeway_rows = {8: +1, 9: -1, 24: +1, 25: -1}  # row -> direction of travel

    # Candidate undirected lattice edges (right and up neighbors).
    candidates: List[Tuple[GridCoord, GridCoord]] = []
    for row in range(LATTICE):
        for col in range(LATTICE):
            if col + 1 < LATTICE:
                candidates.append(((row, col), (row, col + 1)))
            if row + 1 < LATTICE:
                candidates.append(((row, col), (row + 1, col)))

    # River removal: drop edges whose midpoint is in the band, except at
    # three bridge columns.
    bridge_cols = (20, 23, 26)

    def crosses_river(u: GridCoord, v: GridCoord) -> bool:
        (ux, uy), (vx, vy) = positions[u], positions[v]
        my = (uy + vy) / 2.0
        if my < SIDE_MILES * 0.45:
            return False
        # The edge crosses if its endpoints lie on opposite sides of
        # the river centerline (each evaluated at its own height).
        side_u = ux - _river_offset(uy)
        side_v = vx - _river_offset(vy)
        if side_u * side_v >= 0:
            return False
        return u[1] not in bridge_cols and v[1] not in bridge_cols

    surviving = [edge for edge in candidates if not crosses_river(*edge)]

    # Spanning tree (BFS over surviving edges) to protect connectivity.
    adjacency: Dict[GridCoord, List[GridCoord]] = {}
    for u, v in surviving:
        adjacency.setdefault(u, []).append(v)
        adjacency.setdefault(v, []).append(u)
    root = (0, 0)
    tree_edges = set()
    visited = {root}
    queue = [root]
    while queue:
        u = queue.pop(0)
        for v in adjacency.get(u, ()):
            if v not in visited:
                visited.add(v)
                tree_edges.add((u, v) if u <= v else (v, u))
                queue.append(v)
    if len(visited) != LATTICE * LATTICE:
        raise RuntimeError(
            "road map generation left the lattice disconnected; "
            f"reached {len(visited)} of {LATTICE * LATTICE} nodes"
        )

    def is_freeway(u: GridCoord, v: GridCoord) -> bool:
        return u[0] == v[0] and u[0] in freeway_rows

    # Thin non-tree, non-freeway edges down to the directed-edge budget.
    def directed_count(undirected: List[Tuple[GridCoord, GridCoord]]) -> int:
        total = 0
        for u, v in undirected:
            total += 1 if is_freeway(u, v) else 2
        return total

    removable = [
        edge
        for edge in surviving
        if (edge if edge[0] <= edge[1] else (edge[1], edge[0])) not in tree_edges
        and not is_freeway(*edge)
    ]
    rng.shuffle(removable)
    kept = list(surviving)
    removable_set = {id(edge) for edge in removable}
    for edge in removable:
        if directed_count(kept) <= TARGET_DIRECTED_EDGES:
            break
        kept.remove(edge)

    # Build the graph.
    graph = Graph(name=f"minneapolis-{seed}")
    for (row, col), (x, y) in positions.items():
        graph.add_node((row, col), x=x, y=y)

    attributes: Dict[Tuple[GridCoord, GridCoord], RoadAttributes] = {}
    for u, v in kept:
        (ux, uy), (vx, vy) = positions[u], positions[v]
        distance = math.hypot(ux - vx, uy - vy)
        if is_freeway(u, v):
            direction = freeway_rows[u[0]]
            source, target = (u, v) if (v[1] - u[1]) * direction > 0 else (v, u)
            graph.add_edge(source, target, distance)
            attrs = RoadAttributes("freeway", 55.0, rng.uniform(0.3, 0.7))
            attributes[(source, target)] = attrs
        else:
            graph.add_undirected_edge(u, v, distance)
            mx, my = (ux + vx) / 2.0, (uy + vy) / 2.0
            if _is_downtown(mx, my):
                attrs = RoadAttributes("downtown", 25.0, rng.uniform(0.4, 0.9))
            else:
                attrs = RoadAttributes("arterial", 35.0, rng.uniform(0.1, 0.5))
            attributes[(u, v)] = attrs

    landmarks = _place_landmarks()
    return MinneapolisMap(
        graph=graph, landmarks=landmarks, attributes=attributes, seed=seed
    )


def _place_landmarks() -> Dict[str, GridCoord]:
    """The paper's named query endpoints.

    A->B and C->D are the long diagonals; A->B is the dear one (it must
    fight both the lake detour near A and the river bridges near B,
    playing the role of the paper's against-the-downtown-grain
    diagonal), while C->D runs clear of both. G sits a few blocks from
    D (the 17-iteration short query); E and F are a moderate hop apart
    mid-map.
    """
    top = LATTICE - 1
    return {
        "A": (0, 0),          # southwest corner (lake side)
        "B": (top, top),      # northeast corner (across the river)
        "C": (top, 0),        # northwest corner
        "D": (0, top),        # southeast corner
        "G": (4, top - 3),    # a few blocks from D
        "E": (16, 6),         # mid-west
        "F": (12, 13),        # mid-map, ~11 blocks from E
    }


#: The four query pairs of Table 8 / Figure 9, in paper order.
PAPER_ROAD_QUERIES: Tuple[Tuple[str, str, str], ...] = (
    ("A to B", "A", "B"),
    ("C to D", "C", "D"),
    ("G to D", "G", "D"),
    ("E to F", "E", "F"),
)


def road_queries(road_map: MinneapolisMap) -> Dict[str, Tuple[NodeId, NodeId]]:
    """Resolve the paper's four query pairs to node ids."""
    return {
        label: (road_map.landmark(a), road_map.landmark(b))
        for label, a, b in PAPER_ROAD_QUERIES
    }
