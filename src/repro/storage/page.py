"""Fixed-size disk pages (blocks).

A page holds up to ``blocking_factor`` tuples of one relation, where
the blocking factor is derived from the block size and the schema's
tuple size exactly as Table 1 defines (``Bf = B / T``). Pages track a
dirty bit so the buffer manager knows when eviction costs a write.

Tuples are stored positionally (validated against the schema at the
relation layer); a slot holds either a tuple or None after deletion.

Pages also carry a content checksum (:meth:`Page.checksum`) so the
fault-injection layer can model torn pages: a reader records the
checksum the block was written with and :meth:`Page.verify` detects any
corruption between write and read. The checksum is computed on demand —
fault-free runs never pay for it.
"""

from __future__ import annotations

import zlib
from typing import Iterator, List, Optional, Tuple

#: Table 4A block size in bytes.
DEFAULT_BLOCK_SIZE = 4096

Row = Tuple[object, ...]


class Page:
    """One block of a heap file."""

    __slots__ = ("page_no", "capacity", "slots", "dirty")

    def __init__(self, page_no: int, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("page capacity must be positive")
        self.page_no = page_no
        self.capacity = capacity
        self.slots: List[Optional[Row]] = []
        self.dirty = False

    @property
    def tuple_count(self) -> int:
        """Live (non-deleted) tuples on the page."""
        return sum(1 for slot in self.slots if slot is not None)

    @property
    def is_full(self) -> bool:
        return len(self.slots) >= self.capacity

    def insert(self, row: Row) -> int:
        """Append a tuple; return its slot number. Page must not be full."""
        if self.is_full:
            raise ValueError(f"page {self.page_no} is full")
        self.slots.append(row)
        self.dirty = True
        return len(self.slots) - 1

    def read(self, slot: int) -> Optional[Row]:
        """Tuple at ``slot`` (None if deleted)."""
        if not 0 <= slot < len(self.slots):
            raise ValueError(
                f"slot {slot} out of range on page {self.page_no} "
                f"({len(self.slots)} slots)"
            )
        return self.slots[slot]

    def update(self, slot: int, row: Row) -> None:
        """Overwrite the tuple at ``slot`` in place."""
        if not 0 <= slot < len(self.slots):
            raise ValueError(f"slot {slot} out of range on page {self.page_no}")
        if self.slots[slot] is None:
            raise ValueError(
                f"slot {slot} on page {self.page_no} was deleted"
            )
        self.slots[slot] = row
        self.dirty = True

    def delete(self, slot: int) -> None:
        """Tombstone the tuple at ``slot`` (slot is not reused)."""
        if not 0 <= slot < len(self.slots):
            raise ValueError(f"slot {slot} out of range on page {self.page_no}")
        self.slots[slot] = None
        self.dirty = True

    def checksum(self) -> int:
        """Deterministic CRC32 over the page content.

        Stable across processes (no reliance on ``hash()`` and its
        per-process randomization), so fault schedules and detection
        behaviour replay identically run to run.
        """
        return zlib.crc32(repr(self.slots).encode("utf-8"))

    def verify(self, expected: int, file_name: str = "?") -> None:
        """Raise :class:`TornPageError` unless the content matches.

        ``expected`` is the checksum recorded when the block was last
        known good (in the simulation: just before the injector tore
        it). This is the detection half of torn-page handling; recovery
        is the caller re-reading the block.
        """
        if self.checksum() != expected:
            from repro.exceptions import TornPageError

            raise TornPageError(file_name, self.page_no)

    def to_snapshot(self) -> Tuple[int, int, Tuple[Optional[Row], ...]]:
        """Checkpoint form: ``(page_no, capacity, slots)``.

        Tombstoned slots are kept (as None) so record ids stay valid
        after recovery — a redo record addressing ``(page, slot)`` must
        land on the same physical slot it was logged against.
        """
        return (self.page_no, self.capacity, tuple(self.slots))

    @classmethod
    def from_snapshot(
        cls, snapshot: Tuple[int, int, Tuple[Optional[Row], ...]]
    ) -> "Page":
        """Rebuild a page from :meth:`to_snapshot` output (marked clean)."""
        page_no, capacity, slots = snapshot
        page = cls(page_no, capacity)
        page.slots = list(slots)
        return page

    def rows(self) -> Iterator[Tuple[int, Row]]:
        """Yield ``(slot, row)`` for live tuples in slot order."""
        for slot, row in enumerate(self.slots):
            if row is not None:
                yield slot, row

    def __repr__(self) -> str:
        return (
            f"Page(no={self.page_no}, tuples={self.tuple_count}/"
            f"{self.capacity}, dirty={self.dirty})"
        )


def blocks_for(tuple_count: int, blocking_factor: int) -> int:
    """Blocks needed for ``tuple_count`` tuples — ceil(|T| / Bf).

    The paper's B_s / B_r / B_join arithmetic; zero tuples need zero
    blocks.
    """
    if tuple_count < 0:
        raise ValueError("tuple count must be non-negative")
    if blocking_factor <= 0:
        raise ValueError("blocking factor must be positive")
    return -(-tuple_count // blocking_factor)
