"""E4 — the Minneapolis road map (Table 8 + Figure 9).

The paper's four queries on the (synthetic) Minneapolis map: two long
diagonals (A->B dearer than C->D) and two short paths where the
estimator-based algorithms win decisively ("the path from D to G
required only 17 iterations for the optimal A* algorithm, resulting in
a cost that is 95% smaller than that of the iterative algorithm").

Because the manhattan estimator is not admissible on this map (edge
costs are euclidean distances), A*-v3's route may be sub-optimal; the
result records the optimality gap per query — the speed/optimality
trade-off the paper's conclusion highlights.
"""

from __future__ import annotations

from typing import Dict

from repro.graphs.roadmap import make_minneapolis_map, road_queries
from repro.core.planner import RoutePlanner
from repro.experiments.paper_data import TABLE_8
from repro.experiments.runner import PAPER_ALGORITHMS, measure_suite, pivot
from repro.experiments.spec import ExperimentResult, ExperimentSpec, register
from repro.experiments.tables import render_table

QUERY_CONDITIONS = ("A to B", "C to D", "G to D", "E to F")


def run(seed: int = 1993, cross_check: bool = True) -> ExperimentResult:
    road_map = make_minneapolis_map(seed=seed)
    queries = road_queries(road_map)
    measurements = measure_suite(
        road_map.graph, queries, PAPER_ALGORITHMS, cross_check=cross_check
    )
    result = ExperimentResult(
        experiment_id="E4",
        title="Minneapolis road map (Table 8 / Figure 9): "
        f"{road_map.graph.node_count} nodes, "
        f"{road_map.graph.edge_count} directed edges",
        conditions=list(QUERY_CONDITIONS),
        iterations=pivot(measurements, "iterations"),
        execution_cost=pivot(measurements, "execution_cost"),
        paper_iterations=TABLE_8,
    )
    result.notes = _optimality_gaps(road_map, queries)
    return result


def _optimality_gaps(road_map, queries: Dict) -> str:
    """Report A*-v3's sub-optimality per query (manhattan caveat)."""
    planner = RoutePlanner()
    lines = ["A*-v3 optimality gap (manhattan is inadmissible here):"]
    for label, (source, destination) in queries.items():
        optimal = planner.plan(road_map.graph, source, destination, "dijkstra")
        fast = planner.plan(
            road_map.graph, source, destination, "astar", estimator="manhattan"
        )
        gap = (fast.cost - optimal.cost) / optimal.cost if optimal.cost else 0.0
        lines.append(
            f"  {label}: A* {fast.cost:.3f} vs optimal {optimal.cost:.3f} "
            f"(+{gap:.1%})"
        )
    return "\n".join(lines)


def render(result: ExperimentResult) -> str:
    iterations = render_table(
        "Iterations (paper's Table 8 in parentheses)",
        result.iterations,
        result.conditions,
        row_order=list(PAPER_ALGORITHMS),
        paper=result.paper_iterations,
    )
    costs = render_table(
        "Execution cost, Table 4A units (Figure 9's y-axis)",
        result.execution_cost,
        result.conditions,
        row_order=list(PAPER_ALGORITHMS),
    )
    return f"{result.title}\n\n{iterations}\n\n{costs}\n\n{result.notes}"


SPEC = register(
    ExperimentSpec(
        experiment_id="E4",
        paper_artifacts=("Table 8", "Figure 9"),
        title="Minneapolis road map",
        runner=run,
        renderer=render,
    )
)
