"""The optimality/speed trade-off — the paper's future-work question.

"In real applications such as the ATIS, the tradeoff between optimality
and speed may allow for sub-optimal algorithms to speed the processing.
Our future work will include analyzing the algorithms to find a way to
characterize the tradeoff."

This example characterizes it: weighted A* (estimator scaled by w >= 1)
sweeps the spectrum from exact search (w = 1) to near-greedy (w large),
and for each weight we measure node expansions and the sub-optimality
gap over the paper's four Minneapolis queries — plus the landmark (ALT)
estimator, which restores optimality without geometry assumptions.

Run:  python examples/estimator_tradeoffs.py
"""

from repro import RoutePlanner
from repro.core.astar import astar_search
from repro.core.estimators import (
    EuclideanEstimator,
    LandmarkEstimator,
    ManhattanEstimator,
    ScaledEstimator,
)
from repro.graphs.roadmap import make_minneapolis_map, road_queries


def main() -> None:
    road_map = make_minneapolis_map()
    graph = road_map.graph
    queries = road_queries(road_map)
    planner = RoutePlanner()

    optima = {
        label: planner.plan(graph, s, d, "dijkstra")
        for label, (s, d) in queries.items()
    }

    print("Weighted A* on the Minneapolis map (averages over the four")
    print("paper queries; gap = found cost / optimal cost - 1):\n")
    header = f"{'estimator':<26}{'avg expansions':>15}{'worst gap':>11}"
    print(header)
    print("-" * len(header))

    landmarks = [road_map.landmark(name) for name in ("A", "B", "C", "D")]
    candidates = [
        ("dijkstra (baseline)", None),
        ("euclidean w=1.0", ScaledEstimator(EuclideanEstimator(), 1.0)),
        ("euclidean w=1.5", ScaledEstimator(EuclideanEstimator(), 1.5)),
        ("euclidean w=3.0", ScaledEstimator(EuclideanEstimator(), 3.0)),
        ("manhattan w=1.0", ManhattanEstimator()),
        ("landmark (ALT)", LandmarkEstimator(landmarks)),
    ]
    for label, estimator in candidates:
        expansions, worst_gap = 0, 0.0
        for query_label, (s, d) in queries.items():
            if estimator is None:
                result = planner.plan(graph, s, d, "dijkstra")
            else:
                result = astar_search(graph, s, d, estimator)
            expansions += result.stats.nodes_expanded
            gap = result.cost / optima[query_label].cost - 1.0
            worst_gap = max(worst_gap, gap)
        print(
            f"{label:<26}{expansions / len(queries):>15.0f}"
            f"{worst_gap:>10.1%}"
        )

    print(
        "\nReading the table: euclidean w=1 is admissible (0% gap) but"
        "\nconservative; inflating the weight buys large expansion"
        "\nsavings for bounded sub-optimality; manhattan is fast but"
        "\nunsafe on road geometry; ALT gets focused search AND a 0% gap"
        "\nat the price of per-landmark preprocessing."
    )


if __name__ == "__main__":
    main()
