"""Core single-pair path computation algorithms (the paper's contribution)."""

from repro.core.astar import astar_search, greedy_best_first_search
from repro.core.bidirectional import bidirectional_search
from repro.core.dijkstra import dijkstra_search, dijkstra_sssp
from repro.core.estimators import (
    Estimator,
    EuclideanEstimator,
    LandmarkEstimator,
    ManhattanEstimator,
    ScaledEstimator,
    ZeroEstimator,
    make_estimator,
)
from repro.core.iterative import iterative_search
from repro.core.kshortest import (
    diverse_alternatives,
    k_shortest_paths,
    path_overlap,
)
from repro.core.planner import RoutePlanner, default_planner, plan_route
from repro.core.result import PathResult, SearchStats, reconstruct_path

__all__ = [
    "astar_search",
    "greedy_best_first_search",
    "bidirectional_search",
    "dijkstra_search",
    "dijkstra_sssp",
    "Estimator",
    "EuclideanEstimator",
    "LandmarkEstimator",
    "ManhattanEstimator",
    "ScaledEstimator",
    "ZeroEstimator",
    "make_estimator",
    "iterative_search",
    "k_shortest_paths",
    "diverse_alternatives",
    "path_overlap",
    "RoutePlanner",
    "default_planner",
    "plan_route",
    "PathResult",
    "SearchStats",
    "reconstruct_path",
]
