"""Negative tests: the experiment runner's cross-check must actually
catch a broken engine, not just pass on a working one.

The cross-check is the reproduction's safety net — every number in
EXPERIMENTS.md flows through it — so these tests corrupt engine results
in controlled ways and assert the net closes.
"""

import pytest

from repro.exceptions import ExperimentError
from repro.engine.tracing import RelationalRunResult
from repro.experiments import runner as runner_module
from repro.experiments.runner import measure
from repro.graphs.grid import make_paper_grid


@pytest.fixture
def grid():
    return make_paper_grid(5, "variance")


def _fake_run(source, destination, cost, found=True):
    return RelationalRunResult(
        algorithm="dijkstra",
        variant="status-attribute",
        source=source,
        destination=destination,
        path=[source, destination] if found else [],
        cost=cost,
        found=found,
        iterations=7,
    )


class TestCrossCheckCatchesCorruption:
    def test_impossibly_cheap_path_rejected(self, grid, monkeypatch):
        """An engine claiming a cost below the optimum must fail."""

        def broken(graph, source, destination, algorithm, rgraph=None):
            return _fake_run(source, destination, cost=0.001)

        monkeypatch.setattr(runner_module, "run_relational", broken)
        with pytest.raises(ExperimentError, match="below the optimum"):
            measure(grid, (0, 0), (4, 4), "dijkstra")

    def test_suboptimal_exact_algorithm_rejected(self, grid, monkeypatch):
        """Dijkstra reporting a dearer-than-optimal cost must fail."""

        def broken(graph, source, destination, algorithm, rgraph=None):
            return _fake_run(source, destination, cost=1e9)

        monkeypatch.setattr(runner_module, "run_relational", broken)
        with pytest.raises(ExperimentError, match="!= optimal"):
            measure(grid, (0, 0), (4, 4), "dijkstra")

    def test_phantom_not_found_rejected(self, grid, monkeypatch):
        """Claiming an existing route is unreachable must fail."""

        def broken(graph, source, destination, algorithm, rgraph=None):
            return _fake_run(source, destination, cost=float("inf"), found=False)

        monkeypatch.setattr(runner_module, "run_relational", broken)
        with pytest.raises(ExperimentError, match="found="):
            measure(grid, (0, 0), (4, 4), "dijkstra")

    def test_inadmissible_astar_gets_slack_but_not_below_optimum(
        self, grid, monkeypatch
    ):
        """A*-v1/v2 may be sub-optimal (inadmissible estimator) but a
        below-optimum claim is still impossible."""

        def broken(graph, source, destination, algorithm, rgraph=None):
            run = _fake_run(source, destination, cost=0.001)
            run.algorithm = "astar"
            run.variant = "v1"
            return run

        monkeypatch.setattr(runner_module, "run_relational", broken)
        with pytest.raises(ExperimentError, match="below the optimum"):
            measure(grid, (0, 0), (4, 4), "astar-v1")

    def test_suboptimal_astar_v1_is_tolerated(self, grid, monkeypatch):
        """v1's euclidean estimator may legitimately return a dearer
        path; the cross-check must NOT reject that."""
        from repro.core.dijkstra import dijkstra_search

        optimum = dijkstra_search(grid, (0, 0), (4, 4)).cost

        def slightly_suboptimal(graph, source, destination, algorithm, rgraph=None):
            run = _fake_run(source, destination, cost=optimum * 1.05)
            run.algorithm = "astar"
            run.variant = "v1"
            return run

        monkeypatch.setattr(
            runner_module, "run_relational", slightly_suboptimal
        )
        measurement = measure(grid, (0, 0), (4, 4), "astar-v1")
        assert measurement.path_cost == pytest.approx(optimum * 1.05)

    def test_cross_check_can_be_disabled(self, grid, monkeypatch):
        """cross_check=False runs the raw engine result through."""

        def broken(graph, source, destination, algorithm, rgraph=None):
            return _fake_run(source, destination, cost=0.001)

        monkeypatch.setattr(runner_module, "run_relational", broken)
        measurement = measure(
            grid, (0, 0), (4, 4), "dijkstra", cross_check=False
        )
        assert measurement.path_cost == 0.001
