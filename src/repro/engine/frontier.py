"""FrontierSet management strategies — the Section 5.3.1 design axis.

"We examine two implementations of the frontierSet: as an independent
relation, and as an attribute in the nodes relation."

* :class:`SeparateRelationFrontier` (A* **version 1**): the frontier is
  its own relation with a secondary index. Adding a node APPENDs a
  tuple (and adjusts the index); removing one DELETEs it. The node
  relation R is built lazily — nodes are appended as first discovered,
  so there is no up-front initialization cost. The downside is churn:
  INGRES-era heap files do not reuse deleted slots and secondary-index
  overflow chains grow with every append, so per-operation cost climbs
  as the search runs — this is what makes version 1 lose to version 2
  on larger graphs (Figure 10) despite winning on skewed/short queries
  (Figures 11-12).

* :class:`StatusAttributeFrontier` (A* **versions 2-3**, and the
  engine's Dijkstra): the frontier is the set of R-tuples with
  ``status = open``. Relaxing an edge is a single keyed REPLACE through
  R's ISAM index ("version 2 ... further combines the APPEND and DELETE
  in A* version 1 to a REPLACE"); selecting the best node is a scan of
  R. R is fully initialized (and indexed) up front, which costs more
  before the first iteration but keeps per-operation cost flat.

Both implement the same protocol:

``open_node(node_id, path_cost, predecessor)``
    label a node and place it on the frontier (used for the source);
``relax(node_id, new_cost, predecessor)``
    conditional improvement — returns True if the label improved;
``select_best()``
    the open tuple minimising ``key_of(tuple)`` (None when empty);
``close(tuple)``
    move the selected tuple to the explored set;
``size()``
    number of open nodes.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional

from repro.exceptions import PlannerError
from repro.graphs.graph import Graph, NodeId
from repro.storage.iostats import IOStatistics
from repro.storage.relation import Relation
from repro.storage.schema import (
    ANY,
    FLOAT,
    STATUS_CLOSED,
    STATUS_NULL,
    STATUS_OPEN,
    Field,
    Schema,
)

#: Entries per secondary-index page of the separate frontier relation
#: (drives how fast version 1's overflow chains grow).
INDEX_ENTRIES_PER_PAGE = 64


def frontier_schema() -> Schema:
    """Schema of version 1's independent frontier relation.

    Carries both the selection key (``f_cost``) and the node's current
    label (``path_cost``), so selecting the best node needs no lookup
    in the unindexed lazy R.
    """
    return Schema(
        "F",
        [
            Field("node_id", ANY, 12),
            Field("f_cost", FLOAT, 8),
            Field("path_cost", FLOAT, 8),
        ],
    )


class StatusAttributeFrontier:
    """Frontier as R.status = 'open' (versions 2 and 3).

    ``key_of`` maps an R tuple to the selection key: ``path_cost`` for
    Dijkstra, ``path_cost + f(node, d)`` for A*.
    """

    name = "status-attribute"

    def __init__(
        self,
        R: Relation,
        stats: IOStatistics,
        key_of: Callable[[dict], float],
    ) -> None:
        if R.isam is None:
            raise PlannerError("status-attribute frontier needs R's ISAM index")
        self.R = R
        self.stats = stats
        self.key_of = key_of
        self._open_count = 0

    def size(self) -> int:
        return self._open_count

    def open_node(
        self, node_id: NodeId, path_cost: float, predecessor: Optional[NodeId]
    ) -> None:
        """Unconditionally label and open a node (the source)."""
        applied = self._descend_and_update(
            node_id, path_cost, predecessor, conditional=False
        )
        if applied is None:
            raise PlannerError(f"node {node_id!r} missing from R")

    def relax(
        self, node_id: NodeId, new_cost: float, predecessor: Optional[NodeId]
    ) -> bool:
        """Keyed conditional REPLACE: improve the label if cheaper."""
        applied = self._descend_and_update(
            node_id, new_cost, predecessor, conditional=True
        )
        if applied is None:
            raise PlannerError(f"node {node_id!r} missing from R")
        return applied

    def _descend_and_update(
        self,
        node_id: NodeId,
        new_cost: float,
        predecessor: Optional[NodeId],
        conditional: bool,
    ) -> Optional[bool]:
        """One ISAM descent + data read; update in place when improving."""
        rid = self.R.isam.probe(node_id)  # charges I_l reads
        if rid is None:
            return None
        old = dict(self.R.read(rid))  # charges the data-page access
        if conditional and old["path_cost"] <= new_cost:
            return False
        was_open = old["status"] == STATUS_OPEN
        old["path_cost"] = new_cost
        old["path"] = predecessor
        old["status"] = STATUS_OPEN
        self.R.heap.update(rid, old)  # charges t_update
        if not was_open:
            self._open_count += 1
        return True

    def select_best(self) -> Optional[dict]:
        """Scan R for the open tuple minimising the selection key."""
        best: Optional[dict] = None
        best_key = math.inf
        best_rid = None
        for rid, values in self.R.scan():
            if values["status"] != STATUS_OPEN:
                continue
            key = self.key_of(values)
            if key < best_key:
                best, best_key, best_rid = dict(values), key, rid
        if best is not None:
            best["_rid"] = best_rid
        return best

    def close(self, node_tuple: dict) -> None:
        """Flip the selected tuple's status to 'closed' in place."""
        rid = node_tuple.get("_rid")
        if rid is None:
            raise PlannerError("close() requires a tuple from select_best()")
        row = {k: v for k, v in node_tuple.items() if k != "_rid"}
        row["status"] = STATUS_CLOSED
        self.R.heap.update(rid, row)  # located by the selection scan
        self._open_count -= 1


class SeparateRelationFrontier:
    """Frontier as an independent relation F (version 1).

    The node relation R is *lazy*: tuples are appended on first
    discovery and located thereafter through an in-memory record-id
    directory, each keyed access charged one block read (the hashed
    lookup INGRES performs). F carries a secondary index whose
    maintenance cost grows with the cumulative number of appends —
    1990s heaps do not reclaim deleted slots, and overflow chains are
    never rebalanced mid-query.
    """

    name = "separate-relation"

    def __init__(
        self,
        create_relation: Callable[..., Relation],
        R: Relation,
        graph: Graph,
        stats: IOStatistics,
        key_of: Callable[[dict], float],
    ) -> None:
        self.R = R
        self.graph = graph
        self.stats = stats
        self.key_of = key_of
        self.F = create_relation(frontier_schema(), name=f"F{id(self) % 10000}")
        self._f_rids: Dict[str, tuple] = {}
        self._r_rids: Dict[str, tuple] = {}
        self._total_appends = 0

    def size(self) -> int:
        return len(self._f_rids)

    # ------------------------------------------------------------------
    def _index_overflow_pages(self) -> int:
        return self._total_appends // INDEX_ENTRIES_PER_PAGE

    def _charge_index_adjustment(self) -> None:
        """Walk the index overflow chain, then write the adjusted page."""
        self.stats.charge_read(1 + self._index_overflow_pages())
        self.stats.charge_write(1)

    def _node_tuple(
        self, node_id: NodeId, path_cost: float, predecessor: Optional[NodeId]
    ) -> dict:
        node = self.graph.node(node_id)
        return {
            "node_id": node_id,
            "x": node.x,
            "y": node.y,
            "status": STATUS_OPEN,
            "path": predecessor,
            "path_cost": path_cost,
        }

    def _write_node(self, node_id: NodeId, values: dict) -> None:
        marker = repr(node_id)
        if marker in self._r_rids:
            self.R.update(self._r_rids[marker], values)
        else:
            self._r_rids[marker] = self.R.insert(values)

    def _read_node(self, node_id: NodeId) -> Optional[dict]:
        """Locate a node's label in the *unindexed* lazy R.

        Version 1's R has no ISAM index (it grows as the search runs),
        so INGRES locates a tuple by scanning the heap — we charge the
        full current block count per lookup, which is what makes
        version 1's per-iteration cost climb with graph size (the
        Figure 10 crossover). The in-memory directory only avoids the
        Python-level O(n) walk; the I/O charge is the scan's.
        """
        rid = self._r_rids.get(repr(node_id))
        if rid is None:
            # A miss still scans the whole heap before concluding.
            self.stats.charge_read(max(1, self.R.heap.blocks_needed()))
            return None
        blocks = max(1, self.R.heap.blocks_needed())
        self.stats.charge_read(blocks - 1)  # R.read charges the last one
        return dict(self.R.read(rid))

    # ------------------------------------------------------------------
    def open_node(
        self, node_id: NodeId, path_cost: float, predecessor: Optional[NodeId]
    ) -> None:
        values = self._node_tuple(node_id, path_cost, predecessor)
        self._write_node(node_id, values)
        self._append_to_frontier(node_id, values)

    def relax(
        self, node_id: NodeId, new_cost: float, predecessor: Optional[NodeId]
    ) -> bool:
        old = self._read_node(node_id)
        if old is not None and old["path_cost"] <= new_cost:
            return False
        values = self._node_tuple(node_id, new_cost, predecessor)
        self._write_node(node_id, values)
        marker = repr(node_id)
        if marker in self._f_rids:
            # Improving an open node: DELETE the stale frontier entry.
            # The index entry is invalidated lazily (no adjustment
            # charge) — the tombstone stays on the data page.
            self.F.delete(self._f_rids.pop(marker))
        self._append_to_frontier(node_id, values)
        return True

    def _append_to_frontier(self, node_id: NodeId, values: dict) -> None:
        rid = self.F.insert(
            {
                "node_id": node_id,
                "f_cost": self.key_of(values),
                "path_cost": values["path_cost"],
            }
        )
        self._total_appends += 1
        self._charge_index_adjustment()
        self._f_rids[repr(node_id)] = rid

    def select_best(self) -> Optional[dict]:
        """Scan F (allocated blocks, tombstones included) for the min,
        then read the winner's full label back from R.

        F only carries the selection key and path cost, so the tuple
        handed to the caller — predecessor pointer included — must come
        from R. Fabricating the missing fields here (an earlier revision
        returned ``path=None``) silently drops the predecessor recorded
        by ``relax``, corrupting path reconstruction for any consumer of
        the protocol. The R lookup is charged at version 1's unindexed
        rate, one heap scan (see :meth:`_read_node`).
        """
        best_entry: Optional[dict] = None
        best_key = math.inf
        for _rid, entry in self.F.scan():
            if entry["f_cost"] < best_key:
                best_key = entry["f_cost"]
                best_entry = dict(entry)
        if best_entry is None:
            return None
        label = self._read_node(best_entry["node_id"])
        if label is None:
            raise PlannerError(
                f"frontier node {best_entry['node_id']!r} missing from R"
            )
        # Membership in F *is* the open status in version 1; R's status
        # column is never rewritten on close, so assert it here.
        label["status"] = STATUS_OPEN
        return label

    def close(self, node_tuple: dict) -> None:
        """DELETE from F; membership in F *is* the open status in v1,
        so no write to R is needed."""
        node_id = node_tuple["node_id"]
        marker = repr(node_id)
        rid = self._f_rids.pop(marker, None)
        if rid is None:
            raise PlannerError(f"node {node_id!r} not in the frontier")
        self.F.delete(rid)  # index entry invalidated lazily
