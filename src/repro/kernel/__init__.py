"""repro.kernel — one search kernel, pluggable graph backends.

The paper's central observation is that its five algorithms (Iterative,
Dijkstra, A* versions 1-3) are a single expansion loop varied along
three axes: frontier policy, estimator, and where the tuples live.
This package is that observation as code:

* :mod:`repro.kernel.loop` — the one loop (:func:`run_search`) and the
  :class:`SearchConfig` that names a point in the design space;
* :mod:`repro.kernel.frontiers` — in-memory heap and wave policies;
* :mod:`repro.kernel.backends` — :class:`InMemoryBackend` (zero I/O)
  and :class:`RelationalBackend` (Table 3/4A rates through ``iostats``),
  plus the relational frontier-policy adapters;
* :mod:`repro.kernel.csr` — the compact CSR form of a graph
  (contiguous ``indptr``/``indices``/``weights`` arrays plus a node-id
  interning table, built once per ``Graph.fingerprint`` and cached)
  and the flat-array fused loops that run on it;
* :mod:`repro.kernel.fastpath` — fused specialisations of the loop for
  the untraced in-memory tier (identical semantics, no per-iteration
  indirection): the CSR tier by default, with the historical dict
  loops kept as the ``*_dict`` baseline;
* :mod:`repro.kernel.result` — the unified :class:`RunResult` schema
  both tiers return.

:func:`search` is the front door for in-memory runs; the relational
configurations live in :mod:`repro.engine` (they need a prepared
:class:`RelationalGraph`).
"""

from __future__ import annotations

from typing import Optional

from repro.exceptions import UnknownAlgorithmError
from repro.graphs.graph import Graph, NodeId
from repro.kernel import accel, csr, fastpath
from repro.kernel.accel import (
    ACCELERATORS,
    Accelerator,
    CCHAccelerator,
    OneStageAccelerator,
    accelerator_for,
    make_accelerator,
)
from repro.kernel.csr import CSRGraph, csr_for
from repro.kernel.backends import (
    InMemoryBackend,
    RelationalBackend,
    RelationalBestFirstPolicy,
    RelationalWavePolicy,
    chase_path_pointers,
)
from repro.kernel.frontiers import HeapFrontierPolicy, WaveFrontierPolicy
from repro.kernel.loop import SearchConfig, run_search
from repro.kernel.result import (
    IterationRecord,
    PathResult,
    RelationalRunResult,
    RunResult,
    SearchStats,
    reconstruct_path,
)

#: Algorithms :func:`search` accepts (the in-memory tier's kernel points).
IN_MEMORY_ALGORITHMS = ("dijkstra", "astar", "iterative", "bidirectional")

#: Fused tiers :func:`search` can dispatch an untraced run to. ``cch``
#: routes through the preprocess → customize → query accelerator
#: pipeline (:mod:`repro.kernel.accel`) and serves Dijkstra-exact
#: answers only.
FASTPATH_TIERS = ("csr", "dict", "cch")

sssp = fastpath.sssp
sssp_tree = csr.sssp_tree
sssp_tree_dict = fastpath.sssp_tree_dict


def search(
    graph: Graph,
    source: NodeId,
    destination: NodeId,
    algorithm: str = "dijkstra",
    estimator=None,
    max_iterations: Optional[int] = None,
    trace: bool = False,
    tier: str = "csr",
) -> RunResult:
    """Run one in-memory single-pair search through the kernel.

    ``algorithm`` selects the frontier policy: ``"dijkstra"`` is the
    heap policy with no lookahead (``estimator`` is ignored),
    ``"astar"`` the heap policy ordered by ``g + h`` (``estimator``
    defaults to zero, i.e. Dijkstra-equivalent expansion), and
    ``"iterative"`` the wave policy. With ``trace=False`` (the default)
    the fused fast paths run — this is the production path. ``tier``
    picks the fused realisation: ``"csr"`` (default) runs on the
    cached flat-array form, ``"dict"`` on the historical dict-of-dict
    loops (the wall-clock baseline). With ``trace=True`` the generic
    loop runs instead (``tier`` is ignored) and the result carries
    per-iteration :class:`IterationRecord` entries (including the
    selected labels), which is what the cross-backend equivalence tests
    compare; counters and results are identical on every tier.
    """
    if algorithm not in IN_MEMORY_ALGORITHMS:
        raise UnknownAlgorithmError(algorithm, IN_MEMORY_ALGORITHMS)
    if tier not in FASTPATH_TIERS:
        raise ValueError(
            f"unknown fastpath tier {tier!r}; expected one of "
            f"{', '.join(FASTPATH_TIERS)}"
        )
    if tier == "cch":
        if trace:
            raise ValueError(
                "the cch tier has no traced realisation; use tier='csr' "
                "or tier='dict' with trace=True"
            )
        if algorithm != "dijkstra":
            raise ValueError(
                f"the cch tier serves cost-exact shortest paths only "
                f"(algorithm='dijkstra'); got algorithm={algorithm!r}"
            )
        return accel.accelerator_for(graph, "cch").query(
            graph, source, destination
        )
    if algorithm == "bidirectional":
        if trace:
            raise ValueError(
                "bidirectional has no traced realisation; its two "
                "frontiers do not map onto the single-frontier kernel "
                "loop — use trace=False"
            )
        if tier == "csr":
            return fastpath.bidirectional(graph, source, destination)
        return fastpath.bidirectional_dict(graph, source, destination)

    if algorithm == "astar" and estimator is None:
        from repro.core.estimators import ZeroEstimator

        estimator = ZeroEstimator()

    if not trace:
        if tier == "csr":
            if algorithm == "dijkstra":
                return fastpath.uniform_cost(graph, source, destination)
            if algorithm == "astar":
                return fastpath.best_first(
                    graph, source, destination, estimator, max_iterations
                )
            return fastpath.wave(graph, source, destination, max_iterations)
        if algorithm == "dijkstra":
            return fastpath.uniform_cost_dict(graph, source, destination)
        if algorithm == "astar":
            return fastpath.best_first_dict(
                graph, source, destination, estimator, max_iterations
            )
        return fastpath.wave_dict(graph, source, destination, max_iterations)

    if algorithm == "dijkstra":
        config = SearchConfig(
            algorithm="dijkstra",
            make_policy=lambda backend, stats, dest: HeapFrontierPolicy(
                backend.graph, stats, None, dest
            ),
            trace=True,
        )
    elif algorithm == "astar":
        est = estimator
        limit = (
            max_iterations
            if max_iterations is not None
            else max(1000, len(graph) * len(graph))
        )
        config = SearchConfig(
            algorithm="astar",
            estimator=est,
            estimator_name=est.name,
            make_policy=lambda backend, stats, dest: HeapFrontierPolicy(
                backend.graph, stats, est, dest
            ),
            limit=limit,
            limit_error=lambda bound: RuntimeError(
                f"A* exceeded {bound} iterations; the estimator may be "
                "wildly inconsistent"
            ),
            trace=True,
        )
    else:
        limit = (
            max_iterations
            if max_iterations is not None
            else 4 * len(graph) + 4
        )
        config = SearchConfig(
            algorithm="iterative",
            make_policy=lambda backend, stats, dest: WaveFrontierPolicy(
                backend.graph, stats
            ),
            limit=limit,
            limit_error=lambda bound: RuntimeError(
                f"iterative search exceeded {bound} waves; "
                "graph may have pathological costs"
            ),
            trace=True,
        )
    return run_search(InMemoryBackend(graph), source, destination, config)


__all__ = [
    "ACCELERATORS",
    "Accelerator",
    "CCHAccelerator",
    "CSRGraph",
    "FASTPATH_TIERS",
    "IN_MEMORY_ALGORITHMS",
    "OneStageAccelerator",
    "accel",
    "accelerator_for",
    "make_accelerator",
    "HeapFrontierPolicy",
    "InMemoryBackend",
    "IterationRecord",
    "PathResult",
    "RelationalBackend",
    "RelationalBestFirstPolicy",
    "RelationalRunResult",
    "RelationalWavePolicy",
    "RunResult",
    "SearchConfig",
    "SearchStats",
    "WaveFrontierPolicy",
    "chase_path_pointers",
    "csr",
    "csr_for",
    "fastpath",
    "reconstruct_path",
    "run_search",
    "search",
    "sssp",
    "sssp_tree",
    "sssp_tree_dict",
]
