"""E8 — analytical cost predictions (Table 4B) and model validation.

Two parts, mirroring Section 4.3 and Section 5's validation claim:

1. **Table 4B**: feed the paper's own Table 6 iteration counts into the
   algebraic cost model (nested-loop join forced, Table 4A parameters)
   and print the estimated costs beside the published ones;
2. **Model-vs-engine validation**: run the relational engine on the
   30x30 variance grid, predict each run's cost from its iteration
   trace, and report the relative error — the paper claims "we were
   able to predict actual execution time within ten percent".
"""

from __future__ import annotations

from typing import Dict

from repro.costmodel import (
    parameters_for_grid,
    predict_run,
    prediction_error,
    table_4b,
)
from repro.graphs.grid import make_paper_grid, paper_queries
from repro.engine import RelationalGraph, run_relational
from repro.experiments.paper_data import TABLE_4B, TABLE_6
from repro.experiments.spec import ExperimentResult, ExperimentSpec, register
from repro.experiments.tables import render_table

PATH_CONDITIONS = ("horizontal", "semi-diagonal", "diagonal")
#: Edge counts of the three canonical 30x30 queries (uniform costs).
PATH_LENGTHS = {"horizontal": 29, "semi-diagonal": 44, "diagonal": 58}
_ALGORITHM_ORDER = ("iterative", "astar-v3", "dijkstra")
#: The cost model addresses A*-v3 as plain "astar".
_MODEL_NAMES = {"astar-v3": "astar"}


def run(k: int = 30, seed: int = 1993, cross_check: bool = True) -> ExperimentResult:
    params = parameters_for_grid(k)

    # Part 1: Table 4B from the paper's published iteration counts.
    published_iterations = {
        _MODEL_NAMES.get(algorithm, algorithm): dict(by_path)
        for algorithm, by_path in TABLE_6.items()
    }
    estimates = table_4b(params, published_iterations, PATH_LENGTHS)
    estimated_costs = {
        algorithm: estimates[_MODEL_NAMES.get(algorithm, algorithm)]
        for algorithm in _ALGORITHM_ORDER
    }

    # Part 2: predict live engine runs and record the error.
    graph = make_paper_grid(k, "variance", seed=seed)
    rgraph = RelationalGraph(graph)
    errors: Dict[str, Dict[str, float]] = {}
    measured: Dict[str, Dict[str, float]] = {}
    for path_name, query in paper_queries(k).items():
        for algorithm in _ALGORITHM_ORDER:
            run_result = run_relational(
                graph, query.source, query.destination, algorithm, rgraph=rgraph
            )
            prediction = predict_run(run_result, params)
            measured.setdefault(algorithm, {})[path_name] = (
                run_result.execution_cost
            )
            errors.setdefault(algorithm, {})[path_name] = prediction_error(
                prediction.total, run_result.execution_cost
            )

    result = ExperimentResult(
        experiment_id="E8",
        title="Analytical cost model (Table 4B) and prediction accuracy",
        conditions=list(PATH_CONDITIONS),
        execution_cost=estimated_costs,
        paper_costs=TABLE_4B,
    )
    worst = max(max(row.values()) for row in errors.values())
    lines = [
        "Model-vs-engine relative error per run "
        f"(worst {worst:.1%}; paper claims <=10% for its simulation):"
    ]
    for algorithm in _ALGORITHM_ORDER:
        cells = ", ".join(
            f"{path}: {errors[algorithm][path]:.1%}"
            for path in PATH_CONDITIONS
        )
        lines.append(f"  {algorithm}: {cells}")
    result.notes = "\n".join(lines)
    result.iterations = {}  # this experiment reports costs, not counts
    return result


def render(result: ExperimentResult) -> str:
    table = render_table(
        "Estimated cost, Table 4A units (paper's Table 4B in parentheses)",
        result.execution_cost,
        result.conditions,
        row_order=list(_ALGORITHM_ORDER),
        paper=result.paper_costs,
    )
    return f"{result.title}\n\n{table}\n\n{result.notes}"


SPEC = register(
    ExperimentSpec(
        experiment_id="E8",
        paper_artifacts=("Table 4B",),
        title="Analytical cost predictions",
        runner=run,
        renderer=render,
    )
)
