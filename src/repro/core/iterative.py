"""The Iterative (breadth-first, label-correcting) algorithm — Figure 1.

This is the paper's representative of the *transitive closure* class:
each iteration of the outer loop expands the **entire** frontierSet in
one wave, relaxes every outgoing edge, and collects the improved nodes
into the next wave. The search only terminates when the frontier is
empty, i.e. after the whole reachable graph has been labelled —
"the iterative algorithm cannot be terminated before exploring the
entire graph", which is why its iteration count is insensitive to path
length (Tables 5-8 show 2k-1 waves on a k x k grid regardless of the
query pair).

An *iteration* here is one wave (one trip of the outer while loop),
matching how the paper counts iterations for this algorithm.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.exceptions import NodeNotFoundError
from repro.graphs.graph import Graph, NodeId
from repro.core.result import PathResult, SearchStats, reconstruct_path


def iterative_search(
    graph: Graph,
    source: NodeId,
    destination: NodeId,
    max_iterations: Optional[int] = None,
) -> PathResult:
    """Find the shortest path from ``source`` to ``destination``.

    Implements the pseudo-code of Figure 1: wave-synchronous label
    correcting over the whole graph. Correct for non-negative edge
    costs (Lemma 1); with costs that vary between edges a node may be
    *reopened* (re-enter a later wave after its label improves), which
    the paper calls backtracking and which inflates per-wave cost
    without changing the wave count much.

    ``max_iterations`` bounds the wave count as a safety valve for
    adversarial inputs; the natural bound is |N| waves on non-negative
    costs (each wave settles at least one node's final label).
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    if destination not in graph:
        raise NodeNotFoundError(destination)

    stats = SearchStats()
    cost: Dict[NodeId, float] = {source: 0.0}
    predecessor: Dict[NodeId, NodeId] = {}
    frontier = [source]
    in_frontier = {source}
    limit = max_iterations if max_iterations is not None else 4 * len(graph) + 4
    ever_expanded = set()

    while frontier:
        stats.iterations += 1
        if stats.iterations > limit:
            raise RuntimeError(
                f"iterative search exceeded {limit} waves; "
                "graph may have pathological costs"
            )
        stats.observe_frontier(len(frontier))
        next_wave = []
        next_in_frontier = set()
        for u in frontier:
            stats.nodes_expanded += 1
            if u in ever_expanded:
                stats.nodes_reopened += 1
            ever_expanded.add(u)
            base = cost[u]
            for v, edge_cost in graph.neighbors(u):
                stats.edges_relaxed += 1
                candidate = base + edge_cost
                if candidate < cost.get(v, math.inf):
                    cost[v] = candidate
                    predecessor[v] = u
                    stats.nodes_updated += 1
                    if v not in next_in_frontier:
                        next_wave.append(v)
                        next_in_frontier.add(v)
                        stats.frontier_inserts += 1
        frontier = next_wave
        in_frontier = next_in_frontier

    result = PathResult(
        source=source,
        destination=destination,
        algorithm="iterative",
        stats=stats,
    )
    path = reconstruct_path(predecessor, source, destination)
    if path is not None and destination in cost:
        result.path = path
        result.cost = cost[destination]
        result.found = True
    return result
