"""E1 — effect of graph size (Table 5 + Figure 5).

Diagonal path on 10x10 / 20x20 / 30x30 grids with 20% edge-cost
variance. The paper's findings this experiment must reproduce:

* Dijkstra and A*-v3 iterations and execution time grow ~linearly with
  the number of nodes (Dijkstra approaches n - 1 iterations);
* the Iterative algorithm's wave count is 2k - 1 and its execution
  time grows sublinearly in n, making it the cheapest on the diagonal.
"""

from __future__ import annotations

from typing import Sequence

from repro.graphs.grid import PAPER_GRID_SIZES, diagonal_query, make_paper_grid
from repro.experiments.paper_data import TABLE_5
from repro.experiments.runner import PAPER_ALGORITHMS, measure_suite, pivot
from repro.experiments.spec import ExperimentResult, ExperimentSpec, register
from repro.experiments.tables import render_table


def run(
    sizes: Sequence[int] = PAPER_GRID_SIZES,
    seed: int = 1993,
    cross_check: bool = True,
) -> ExperimentResult:
    """Run the graph-size sweep; conditions are '10x10' etc."""
    conditions = [f"{k}x{k}" for k in sizes]
    measurements = []
    for k in sizes:
        graph = make_paper_grid(k, "variance", seed=seed)
        query = diagonal_query(k)
        suite = measure_suite(
            graph,
            {f"{k}x{k}": (query.source, query.destination)},
            PAPER_ALGORITHMS,
            cross_check=cross_check,
        )
        measurements.extend(suite)
    paper = {
        algorithm: {f"{k}x{k}": count for k, count in by_size.items()}
        for algorithm, by_size in TABLE_5.items()
    }
    return ExperimentResult(
        experiment_id="E1",
        title="Effect of graph size (Table 5 / Figure 5): "
        "20% variance, diagonal path",
        conditions=conditions,
        iterations=pivot(measurements, "iterations"),
        execution_cost=pivot(measurements, "execution_cost"),
        paper_iterations=paper,
    )


def render(result: ExperimentResult) -> str:
    iterations = render_table(
        "Iterations (paper's Table 5 in parentheses)",
        result.iterations,
        result.conditions,
        row_order=list(PAPER_ALGORITHMS),
        paper=result.paper_iterations,
    )
    costs = render_table(
        "Execution cost, Table 4A units (Figure 5's y-axis)",
        result.execution_cost,
        result.conditions,
        row_order=list(PAPER_ALGORITHMS),
    )
    return f"{result.title}\n\n{iterations}\n\n{costs}"


SPEC = register(
    ExperimentSpec(
        experiment_id="E1",
        paper_artifacts=("Table 5", "Figure 5"),
        title="Effect of graph size",
        runner=run,
        renderer=render,
    )
)
