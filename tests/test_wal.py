"""Tests for the write-ahead log: framing, stable stores, journaling,
checkpointing, recovery, and the durability billing."""

import pytest

from repro.exceptions import RecoveryError, SimulatedCrash, StorageError
from repro.faults import FaultInjector, FaultPlan
from repro.storage.database import Database
from repro.storage.iostats import IOStatistics
from repro.storage.schema import ANY, FLOAT, Field, Schema
from repro.wal import (
    DirectoryStableStore,
    InMemoryStableStore,
    WriteAheadLog,
    decode_stream,
    frame,
    recover_database,
    replay_epochs,
    unframe,
)


def t_schema(name="t"):
    return Schema(name, [Field("k", ANY, 8), Field("v", FLOAT, 8)])


def make_db(store=None, **kwargs):
    store = store if store is not None else InMemoryStableStore()
    wal = WriteAheadLog(store=store)
    db = Database(wal=wal, **kwargs)
    return db, wal, store


class TestFraming:
    def test_round_trip(self):
        record = ("insert", "t", (0, 1), (3, 2.5))
        assert unframe(frame(record)) == record

    def test_floats_survive_including_inf_and_nan(self):
        record = ("update", "t", (0, 0), (1, float("inf")))
        assert unframe(frame(record)) == record

    def test_corrupt_line_rejected(self):
        line = frame(("insert", "t", (0, 0), (1, 1.0)))
        assert unframe(line[:-1] + "X") is None
        assert unframe("nonsense") is None
        assert unframe("") is None

    def test_torn_tail_is_silently_dropped(self):
        lines = [frame(("create", "t", ("t", ()))), "deadbeef torn"]
        assert len(list(decode_stream(lines))) == 1

    def test_mid_log_corruption_raises(self):
        lines = [
            frame(("create", "t", ("t", ()))),
            "deadbeef torn",
            frame(("truncate", "t")),
        ]
        with pytest.raises(RecoveryError):
            list(decode_stream(lines))


class TestStableStores:
    def test_in_memory_round_trip(self):
        store = InMemoryStableStore()
        store.append("a")
        store.append("b")
        assert list(store.lines()) == ["a", "b"]
        store.write_snapshot("snap")
        assert store.read_snapshot() == "snap"
        store.clear_log()
        assert list(store.lines()) == []

    def test_directory_store_round_trip(self, tmp_path):
        store = DirectoryStableStore(tmp_path / "wal")
        store.append("a")
        store.append("b")
        store.write_snapshot("snap")
        # A second handle on the same directory sees the same bytes.
        again = DirectoryStableStore(tmp_path / "wal")
        assert list(again.lines()) == ["a", "b"]
        assert again.read_snapshot() == "snap"
        again.clear_log()
        assert list(DirectoryStableStore(tmp_path / "wal").lines()) == []

    def test_directory_store_survives_database_recovery(self, tmp_path):
        store = DirectoryStableStore(tmp_path / "wal")
        db, _wal, _ = make_db(store=store)
        relation = db.create_relation(t_schema(), name="t")
        relation.insert({"k": 1, "v": 2.0})
        recovered = Database.recover(
            WriteAheadLog(store=DirectoryStableStore(tmp_path / "wal"))
        )
        assert recovered.relation("t").all_tuples() == [{"k": 1, "v": 2.0}]


class TestJournaling:
    def test_mutations_append_committed_records(self):
        db, wal, store = make_db()
        relation = db.create_relation(t_schema(), name="t")
        rid = relation.insert({"k": 1, "v": 1.0})
        relation.update(rid, {"k": 1, "v": 2.0})
        relation.delete(rid)
        kinds = [record[0] for record in decode_stream(store.lines())]
        assert kinds == ["create", "insert", "update", "delete"]
        assert wal.records_appended == 4

    def test_wal_writes_are_billed_separately(self):
        db, _wal, _store = make_db()
        relation = db.create_relation(t_schema(), name="t")
        relation.insert({"k": 1, "v": 1.0})
        assert db.stats.wal_writes == 2  # create + insert
        assert db.stats.cost >= db.stats.wal_writes * db.stats.t_write
        snap = db.stats.snapshot()
        assert snap["wal_writes"] == 2
        assert snap["wal_reads"] == 0

    def test_wal_off_runs_identically_except_the_journal(self):
        """With no WAL attached the storage stack must behave exactly
        as the seed: same charges, no durability counters."""
        def drive(db):
            relation = db.create_relation(t_schema(), name="t")
            for key in range(8):
                relation.insert({"k": key, "v": float(key)})
            relation.create_isam_index("k", fanout=4)
            return relation

        bare = Database()
        logged, _wal, _store = make_db()
        drive(bare)
        drive(logged)
        assert bare.stats.wal_writes == 0
        bare_snap = bare.stats.snapshot()
        logged_snap = logged.stats.snapshot()
        for key in ("block_reads", "block_writes", "tuple_updates"):
            assert bare_snap[key] == logged_snap[key]
        assert logged.stats.cost == pytest.approx(
            bare.stats.cost + logged.stats.wal_writes * logged.stats.t_write
        )


class TestRecovery:
    def test_recovery_rebuilds_relations_and_indexes(self):
        db, _wal, store = make_db()
        relation = db.create_relation(t_schema(), name="t")
        relation.bulk_load({"k": key, "v": float(key)} for key in range(10))
        relation.create_isam_index("k", fanout=4)
        relation.insert({"k": 99, "v": 9.0})
        recovered = Database.recover(WriteAheadLog(store=store))
        rebuilt = recovered.relation("t")
        assert rebuilt.all_tuples() == relation.all_tuples()
        assert rebuilt.isam is not None
        assert rebuilt.isam.verify()
        assert rebuilt.isam.probe(99) is not None
        assert recovered.last_recovery.records_replayed == 4

    def test_recovery_bills_wal_reads(self):
        db, _wal, store = make_db()
        relation = db.create_relation(t_schema(), name="t")
        relation.insert({"k": 1, "v": 1.0})
        recovered = Database.recover(WriteAheadLog(store=store))
        assert recovered.stats.wal_reads >= 2

    def test_recover_empty_store_is_a_no_op(self):
        recovered = Database.recover(WriteAheadLog(store=InMemoryStableStore()))
        assert list(recovered.relation_names()) == []
        assert recovered.last_recovery.records_replayed == 0
        assert not recovered.last_recovery.snapshot_loaded

    def test_recovery_is_idempotent(self):
        db, _wal, store = make_db()
        relation = db.create_relation(t_schema(), name="t")
        for key in range(6):
            relation.insert({"k": key, "v": float(key)})
        db.checkpoint()
        relation.insert({"k": 100, "v": 1.0})
        first = Database.recover(WriteAheadLog(store=store))
        second = Database.recover(WriteAheadLog(store=store))
        assert repr(first.state_snapshot()) == repr(second.state_snapshot())

    def test_recovered_database_keeps_journaling(self):
        db, _wal, store = make_db()
        db.create_relation(t_schema(), name="t").insert({"k": 1, "v": 1.0})
        recovered = Database.recover(WriteAheadLog(store=store))
        recovered.relation("t").insert({"k": 2, "v": 2.0})
        again = Database.recover(WriteAheadLog(store=store))
        assert sorted(v["k"] for v in again.relation("t").all_tuples()) == [1, 2]

    def test_drop_is_durable(self):
        db, _wal, store = make_db()
        db.create_relation(t_schema(), name="t").insert({"k": 1, "v": 1.0})
        db.create_relation(t_schema("u"), name="u")
        db.drop_relation("u")
        recovered = Database.recover(WriteAheadLog(store=store))
        assert list(recovered.relation_names()) == ["t"]


class TestCheckpoint:
    def test_checkpoint_truncates_and_snapshots(self):
        db, wal, store = make_db()
        relation = db.create_relation(t_schema(), name="t")
        for key in range(5):
            relation.insert({"k": key, "v": float(key)})
        report = db.checkpoint()
        assert report.records_truncated == 6
        assert store.log_length() == 0
        assert store.read_snapshot() is not None
        assert wal.checkpoints == 1

    def test_recovery_from_snapshot_plus_log_suffix(self):
        db, _wal, store = make_db(buffer_capacity=4)
        relation = db.create_relation(t_schema(), name="t")
        relation.bulk_load({"k": key, "v": float(key)} for key in range(12))
        relation.create_hash_index("k", bucket_count=3)
        db.checkpoint()
        relation.insert({"k": 50, "v": 5.0})
        recovered = Database.recover(WriteAheadLog(store=store))
        assert recovered.last_recovery.snapshot_loaded
        assert recovered.last_recovery.records_replayed == 1
        rebuilt = recovered.relation("t")
        assert rebuilt.tuple_count == 13
        assert rebuilt.hash_index.verify()
        assert sorted(v["k"] for v in rebuilt.all_tuples()) == sorted(
            v["k"] for v in relation.all_tuples()
        )

    def test_checkpoint_without_wal_raises(self):
        with pytest.raises(StorageError):
            Database().checkpoint()


class TestCrashFaults:
    def test_crash_at_op_raises_simulated_crash(self):
        stats = IOStatistics()
        plan = FaultPlan(seed=7, crash_at_op=2)
        injector = FaultInjector(plan, stats)
        wal = WriteAheadLog(store=InMemoryStableStore(), stats=stats,
                            injector=injector)
        db = Database(stats=stats, injector=injector, wal=wal)
        relation = db.create_relation(t_schema(), name="t")
        with pytest.raises(SimulatedCrash):
            for key in range(10):
                relation.insert({"k": key, "v": float(key)})

    def test_crash_is_not_absorbed_by_retries(self):
        """SimulatedCrash is a StorageError but not a FaultError, so
        protect() must re-raise it instead of retrying."""
        from repro.exceptions import FaultError

        assert issubclass(SimulatedCrash, StorageError)
        assert not issubclass(SimulatedCrash, FaultError)

    def test_crash_mid_insert_loses_only_the_uncommitted_tail(self):
        stats = IOStatistics()
        plan = FaultPlan(seed=7, crash_at_op=9)
        injector = FaultInjector(plan, stats)
        store = InMemoryStableStore()
        wal = WriteAheadLog(store=store, stats=stats, injector=injector)
        db = Database(stats=stats, injector=injector, wal=wal)
        relation = db.create_relation(t_schema(), name="t")
        committed = []
        with pytest.raises(SimulatedCrash):
            for key in range(10):
                relation.insert({"k": key, "v": float(key)})
                committed.append(key)
        recovered = Database.recover(WriteAheadLog(store=store))
        survived = sorted(v["k"] for v in recovered.relation("t").all_tuples())
        # Everything committed survived; at most the one in-flight
        # insert (journaled before the crash fired) rides along.
        assert survived[: len(committed)] == committed
        assert len(survived) - len(committed) <= 1

    def test_attaching_a_wal_does_not_shift_the_fault_schedule(self):
        """WAL commit sites consume no RNG draw, so a seeded plan
        faults the same sites with the same kinds in the same order
        with and without a WAL (the op *indexes* differ — commit sites
        consume indexes — but the drawn schedule must not)."""
        def drive(with_wal):
            stats = IOStatistics()
            plan = FaultPlan(seed=11, read_error_rate=0.2, latency_rate=0.1)
            injector = FaultInjector(plan, stats)
            wal = None
            if with_wal:
                wal = WriteAheadLog(store=InMemoryStableStore(),
                                    stats=stats, injector=injector)
            db = Database(stats=stats, injector=injector, wal=wal)
            relation = db.create_relation(t_schema(), name="t")
            for key in range(12):
                try:
                    relation.insert({"k": key, "v": float(key)})
                except Exception:  # noqa: BLE001 - transient faults expected
                    pass
            return [
                (site, kind)
                for _index, site, kind in plan.schedule
                if kind != "crash"
            ]

        assert drive(False) == drive(True)


class TestTrafficReplay:
    def make_world(self):
        from repro.graphs.grid import make_paper_grid
        from repro.service import RouteService
        from repro.traffic.feed import TrafficFeed

        store = InMemoryStableStore()
        wal = WriteAheadLog(store=store)
        graph = make_paper_grid(3, "variance", seed=5)
        service = RouteService(default_algorithm="dijkstra", wal=wal)
        feed = TrafficFeed(graph)
        feed.subscribe(service)
        return store, graph, service, feed

    def apply_epochs(self, graph, feed):
        edges = sorted((e.source, e.target) for e in graph.edges())
        for round_no in range(2):
            batch = [
                (u, v, graph.edge_cost(u, v) * (1.5 + round_no))
                for u, v in edges[: 3 + round_no]
            ]
            feed.apply(batch)

    def test_epochs_are_journaled_and_replayable(self):
        from repro.graphs.grid import make_paper_grid

        store, graph, _service, feed = self.make_world()
        self.apply_epochs(graph, feed)
        fresh = make_paper_grid(3, "variance", seed=5)
        replayed = replay_epochs(WriteAheadLog(store=store), fresh)
        assert replayed == 2
        for edge in graph.edges():
            assert fresh.edge_cost(edge.source, edge.target) == edge.cost

    def test_recover_on_start_resyncs_the_service(self):
        from repro.graphs.grid import make_paper_grid
        from repro.service import RouteService

        store, graph, _service, feed = self.make_world()
        self.apply_epochs(graph, feed)
        nodes = sorted(graph.node_ids())
        source, destination = nodes[0], nodes[-1]
        reference = RouteService(default_algorithm="dijkstra").plan(
            graph, source, destination
        )
        # A restarted service on a base-cost graph replays the journal
        # before answering.
        restarted_graph = make_paper_grid(3, "variance", seed=5)
        restarted = RouteService(
            default_algorithm="dijkstra",
            wal=WriteAheadLog(store=store),
            recover_on_start=True,
        )
        answer = restarted.plan(restarted_graph, source, destination)
        assert restarted.epochs_recovered == 2
        assert answer.cost == pytest.approx(reference.cost)
        assert restarted.snapshot()["epochs_recovered"] == 2

    def test_recovery_is_applied_once_per_graph(self):
        from repro.graphs.grid import make_paper_grid
        from repro.service import RouteService

        store, graph, _service, feed = self.make_world()
        self.apply_epochs(graph, feed)
        restarted_graph = make_paper_grid(3, "variance", seed=5)
        restarted = RouteService(
            default_algorithm="dijkstra",
            wal=WriteAheadLog(store=store),
            recover_on_start=True,
        )
        assert restarted.recover(restarted_graph) == 2
        assert restarted.recover(restarted_graph) == 0
        fingerprint = restarted_graph.fingerprint
        nodes = sorted(restarted_graph.node_ids())
        restarted.plan(restarted_graph, nodes[0], nodes[-1])
        # plan() must not replay again on an already-recovered graph.
        assert restarted_graph.fingerprint == fingerprint


class TestSatelliteFlushes:
    def dirty_world(self):
        """A database whose relation has a dirtied buffered page (the
        engine's write path: pool access with ``for_write=True``)."""
        db = Database(buffer_capacity=8)
        relation = db.create_relation(t_schema(), name="t")
        for key in range(10):
            relation.insert({"k": key, "v": float(key)})
        page = relation.heap.pages[0]
        db.buffer_pool.access(relation.heap.name, page, for_write=True)
        return db

    def test_drop_relation_flushes_dirty_pages_by_default(self):
        db = self.dirty_world()
        writes_before = db.stats.block_writes
        db.drop_relation("t")
        assert db.dirty_pages_dropped == 0
        # The dirty page was written out, not discarded.
        assert db.stats.block_writes == writes_before + 1

    def test_drop_relation_flush_opt_out(self):
        db = self.dirty_world()
        writes_before = db.stats.block_writes
        db.drop_relation("t", flush=False)
        assert db.dirty_pages_dropped == 1
        assert db.stats.block_writes == writes_before

    def test_flush_relation_targets_one_file(self):
        from repro.storage.buffer import BufferPool
        from repro.storage.page import Page

        stats = IOStatistics()
        pool = BufferPool(stats, capacity=8)
        pool.access("f", Page(0, 4), for_write=True)
        pool.access("g", Page(0, 4), for_write=True)
        assert pool.flush_relation("f") == 1
        assert pool.flush_relation("f") == 0
        assert pool.flush() == {"g": 1}


def test_recover_database_function_matches_classmethod():
    db, _wal, store = make_db()
    db.create_relation(t_schema(), name="t").insert({"k": 1, "v": 1.0})
    via_function = recover_database(WriteAheadLog(store=store))
    via_classmethod = Database.recover(WriteAheadLog(store=store))
    assert repr(via_function.state_snapshot()) == repr(
        via_classmethod.state_snapshot()
    )
