"""The Iterative (breadth-first, label-correcting) algorithm — Figure 1.

This is the paper's representative of the *transitive closure* class:
each iteration of the outer loop expands the **entire** frontierSet in
one wave, relaxes every outgoing edge, and collects the improved nodes
into the next wave. The search only terminates when the frontier is
empty, i.e. after the whole reachable graph has been labelled —
"the iterative algorithm cannot be terminated before exploring the
entire graph", which is why its iteration count is insensitive to path
length (Tables 5-8 show 2k-1 waves on a k x k grid regardless of the
query pair).

An *iteration* here is one wave (one trip of the outer while loop),
matching how the paper counts iterations for this algorithm.

This module is a thin configuration of :mod:`repro.kernel`: the wave
frontier policy on the in-memory backend.
"""

from __future__ import annotations

from typing import Optional

from repro.graphs.graph import Graph, NodeId
from repro.core.result import PathResult
from repro.kernel import search


def iterative_search(
    graph: Graph,
    source: NodeId,
    destination: NodeId,
    max_iterations: Optional[int] = None,
) -> PathResult:
    """Find the shortest path from ``source`` to ``destination``.

    Implements the pseudo-code of Figure 1: wave-synchronous label
    correcting over the whole graph. Correct for non-negative edge
    costs (Lemma 1); with costs that vary between edges a node may be
    *reopened* (re-enter a later wave after its label improves), which
    the paper calls backtracking and which inflates per-wave cost
    without changing the wave count much.

    ``max_iterations`` bounds the wave count as a safety valve for
    adversarial inputs; the natural bound is |N| waves on non-negative
    costs (each wave settles at least one node's final label).
    """
    return search(
        graph,
        source,
        destination,
        algorithm="iterative",
        max_iterations=max_iterations,
    )
