"""Property-based tests: planner invariants on random graphs.

The reference oracle is networkx's Dijkstra; every optimal planner in
the library must agree with it on arbitrary non-negative-cost directed
graphs, and a stack of structural invariants must hold for any result.
"""

import math

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.astar import astar_search
from repro.core.bidirectional import bidirectional_search
from repro.core.dijkstra import dijkstra_search, dijkstra_sssp
from repro.core.estimators import EuclideanEstimator, ZeroEstimator
from repro.core.iterative import iterative_search
from repro.graphs.graph import Graph

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
_COSTS = st.floats(
    min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


@st.composite
def random_graphs(draw, max_nodes=12):
    """A random directed graph with coordinates and non-negative costs."""
    node_count = draw(st.integers(min_value=2, max_value=max_nodes))
    graph = Graph(name="hypothesis")
    for index in range(node_count):
        x = draw(st.floats(min_value=-10, max_value=10, allow_nan=False))
        y = draw(st.floats(min_value=-10, max_value=10, allow_nan=False))
        graph.add_node(index, x, y)
    possible = [
        (u, v) for u in range(node_count) for v in range(node_count) if u != v
    ]
    chosen = draw(
        st.lists(st.sampled_from(possible), max_size=4 * node_count, unique=True)
    )
    for u, v in chosen:
        graph.add_edge(u, v, draw(_COSTS))
    source = draw(st.integers(min_value=0, max_value=node_count - 1))
    destination = draw(st.integers(min_value=0, max_value=node_count - 1))
    return graph, source, destination


def _to_networkx(graph: Graph) -> nx.DiGraph:
    nxg = nx.DiGraph()
    nxg.add_nodes_from(graph.node_ids())
    for edge in graph.edges():
        nxg.add_edge(edge.source, edge.target, weight=edge.cost)
    return nxg


def _reference_cost(graph: Graph, source, destination):
    nxg = _to_networkx(graph)
    try:
        return nx.dijkstra_path_length(nxg, source, destination)
    except nx.NetworkXNoPath:
        return None


_SETTINGS = settings(
    max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None
)


# ----------------------------------------------------------------------
# optimality vs the networkx oracle
# ----------------------------------------------------------------------
@given(random_graphs())
@_SETTINGS
def test_dijkstra_matches_networkx(case):
    graph, source, destination = case
    expected = _reference_cost(graph, source, destination)
    result = dijkstra_search(graph, source, destination)
    if expected is None:
        assert not result.found
    else:
        assert result.found
        assert result.cost == pytest.approx(expected)


@given(random_graphs())
@_SETTINGS
def test_iterative_matches_networkx(case):
    graph, source, destination = case
    expected = _reference_cost(graph, source, destination)
    result = iterative_search(graph, source, destination)
    if expected is None:
        assert not result.found
    else:
        assert result.found
        assert result.cost == pytest.approx(expected)


@given(random_graphs())
@_SETTINGS
def test_astar_zero_estimator_matches_networkx(case):
    graph, source, destination = case
    expected = _reference_cost(graph, source, destination)
    result = astar_search(graph, source, destination, ZeroEstimator())
    if expected is None:
        assert not result.found
    else:
        assert result.found
        assert result.cost == pytest.approx(expected)


@given(random_graphs())
@_SETTINGS
def test_bidirectional_matches_networkx(case):
    graph, source, destination = case
    expected = _reference_cost(graph, source, destination)
    result = bidirectional_search(graph, source, destination)
    if expected is None:
        assert not result.found
    else:
        assert result.found
        assert result.cost == pytest.approx(expected)


# ----------------------------------------------------------------------
# structural invariants
# ----------------------------------------------------------------------
@given(random_graphs())
@_SETTINGS
def test_found_paths_are_valid_and_costed(case):
    graph, source, destination = case
    for search in (dijkstra_search, iterative_search, bidirectional_search):
        result = search(graph, source, destination)
        if result.found:
            assert result.path[0] == source
            assert result.path[-1] == destination
            assert graph.is_valid_path(result.path)
            assert graph.path_cost(result.path) == pytest.approx(result.cost)
        else:
            assert result.path == []
            assert math.isinf(result.cost)


@given(random_graphs())
@_SETTINGS
def test_euclidean_astar_never_beats_optimum(case):
    """Even when geometry makes euclidean inadmissible, a found path's
    cost can never be below the true optimum."""
    graph, source, destination = case
    expected = _reference_cost(graph, source, destination)
    result = astar_search(graph, source, destination, EuclideanEstimator())
    if expected is None:
        assert not result.found
    else:
        assert result.found
        assert result.cost >= expected - 1e-6
        assert graph.path_cost(result.path) == pytest.approx(result.cost)


@given(random_graphs())
@_SETTINGS
def test_sssp_is_consistent_with_single_pair(case):
    graph, source, _destination = case
    distances = dijkstra_sssp(graph, source)
    # Triangle inequality over edges: settled labels admit no relaxation.
    for edge in graph.edges():
        if edge.source in distances:
            assert distances.get(edge.target, math.inf) <= (
                distances[edge.source] + edge.cost + 1e-9
            )
