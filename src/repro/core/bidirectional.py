"""Bidirectional Dijkstra — now a kernel configuration.

PR 3 unified the in-memory planners behind :mod:`repro.kernel` but left
this module's standalone implementation behind; the accelerator-pipeline
refactor folded it in. The dict-tier implementation lives in
:func:`repro.kernel.fastpath.bidirectional_dict` and the CSR fused
realisation in :func:`repro.kernel.csr.bidirectional`;
``kernel.search(..., algorithm="bidirectional")`` dispatches between
them like every other algorithm, and the accelerator registry exposes
it as a one-stage configuration
(``make_accelerator("bidirectional")``).

This module remains as the planner-facing front door (the registry and
``repro.core`` re-export :func:`bidirectional_search` from here).
"""

from __future__ import annotations

from repro.graphs.graph import Graph, NodeId
from repro.core.result import PathResult


def bidirectional_search(
    graph: Graph, source: NodeId, destination: NodeId
) -> PathResult:
    """Bidirectional Dijkstra between ``source`` and ``destination``.

    Runs Dijkstra simultaneously from both endpoints (backwards over
    reversed edges from the destination), alternating expansions, and
    terminates when the sum of the two frontiers' minimum keys is at
    least the best meeting-point cost seen so far — which certifies
    optimality for non-negative edge costs. Dispatches through the
    kernel's CSR fused tier.
    """
    from repro import kernel

    return kernel.search(graph, source, destination, algorithm="bidirectional")
