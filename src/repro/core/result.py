"""Result and statistics records shared by every planner.

The paper reports two things per run: the number of *iterations* an
algorithm performs (Tables 5-8) and its execution cost (Figures 5-12).
:class:`SearchStats` captures the iteration-level counters every planner
maintains; :class:`PathResult` bundles the found path with those
counters so that the experiment harness can regenerate the paper's
tables directly from planner output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class SearchStats:
    """Counters accumulated during a single-pair search.

    Attributes
    ----------
    iterations:
        The paper's headline metric. For Dijkstra and A* this is the
        number of select-and-remove operations on the frontierSet (one
        node expanded per iteration); for the Iterative algorithm it is
        the number of whole-frontier waves (the outer while-loop trips),
        matching how Tables 5-8 count.
    nodes_expanded:
        Nodes whose adjacency list was fetched. Equals ``iterations``
        for Dijkstra/A*; for Iterative each wave expands many nodes.
    edges_relaxed:
        Edge relaxations attempted (adjacency entries examined).
    nodes_updated:
        Relaxations that improved a label (cost + path updated).
    nodes_reopened:
        Nodes re-inserted into the frontier after having been explored
        (backtracking, in the paper's vocabulary).
    max_frontier_size:
        Peak size of the frontierSet, a memory-pressure proxy.
    frontier_inserts:
        Total insertions into the frontierSet (drives the frontier-
        management costs studied in Section 5.3).
    """

    iterations: int = 0
    nodes_expanded: int = 0
    edges_relaxed: int = 0
    nodes_updated: int = 0
    nodes_reopened: int = 0
    max_frontier_size: int = 0
    frontier_inserts: int = 0

    def observe_frontier(self, size: int) -> None:
        """Record the current frontier size for the peak statistic."""
        if size > self.max_frontier_size:
            self.max_frontier_size = size

    def merged_with(self, other: "SearchStats") -> "SearchStats":
        """Combine counters from two searches (used by bidirectional)."""
        return SearchStats(
            iterations=self.iterations + other.iterations,
            nodes_expanded=self.nodes_expanded + other.nodes_expanded,
            edges_relaxed=self.edges_relaxed + other.edges_relaxed,
            nodes_updated=self.nodes_updated + other.nodes_updated,
            nodes_reopened=self.nodes_reopened + other.nodes_reopened,
            max_frontier_size=max(self.max_frontier_size, other.max_frontier_size),
            frontier_inserts=self.frontier_inserts + other.frontier_inserts,
        )


@dataclass
class PathResult:
    """Outcome of a single-pair path computation.

    ``found`` is False when the destination is unreachable; in that case
    ``path`` is empty and ``cost`` is ``float('inf')``. Planners return
    this record rather than raising so that experiment sweeps over many
    pairs need no special-casing; callers who prefer an exception can
    use :meth:`raise_if_not_found`.
    """

    source: object
    destination: object
    path: List[object] = field(default_factory=list)
    cost: float = float("inf")
    found: bool = False
    algorithm: str = ""
    estimator: str = ""
    stats: SearchStats = field(default_factory=SearchStats)

    @property
    def path_length(self) -> int:
        """Number of edges in the path (the paper's L); 0 if not found."""
        return max(0, len(self.path) - 1)

    @property
    def iterations(self) -> int:
        """Shortcut to the headline iteration count."""
        return self.stats.iterations

    def raise_if_not_found(self) -> "PathResult":
        """Return self, or raise :class:`PathNotFoundError`."""
        if not self.found:
            from repro.exceptions import PathNotFoundError

            raise PathNotFoundError(self.source, self.destination)
        return self

    def edge_sequence(self) -> List[Tuple[object, object]]:
        """Consecutive ``(u, v)`` pairs along the path."""
        return list(zip(self.path, self.path[1:]))

    def __repr__(self) -> str:
        status = f"cost={self.cost:.4g}" if self.found else "not-found"
        return (
            f"PathResult({self.source!r} -> {self.destination!r}, {status}, "
            f"edges={self.path_length}, iterations={self.stats.iterations}, "
            f"algorithm={self.algorithm!r})"
        )


def reconstruct_path(
    predecessor: dict, source: object, destination: object
) -> Optional[List[object]]:
    """Walk a predecessor map back from ``destination`` to ``source``.

    This is the paper's "path field in R points to a neighboring node on
    the best path to the source node... the complete path can be
    constructed by traversing this pointer starting at the destination".

    Returns None when the destination was never labelled. Raises
    ``ValueError`` on a corrupt predecessor map (cycle or walk that
    misses the source), which would indicate a planner bug.
    """
    if destination == source:
        return [source]
    if destination not in predecessor:
        return None
    path = [destination]
    seen = {destination}
    current = destination
    while current != source:
        current = predecessor[current]
        if current in seen:
            raise ValueError(
                f"predecessor map contains a cycle through {current!r}"
            )
        seen.add(current)
        path.append(current)
        if len(path) > len(predecessor) + 2:
            raise ValueError("predecessor walk exceeded map size; map is corrupt")
    path.reverse()
    return path
