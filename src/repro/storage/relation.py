"""Relations: heap file + optional indexes + statistics.

A :class:`Relation` bundles the pieces the query layer needs: the paged
tuple store, a primary index (ISAM or hash), and the size metadata
(tuple counts, block counts, blocking factors) that both the query
optimizer and the analytical cost model consume.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Mapping, Optional, Tuple

from repro.exceptions import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.hashindex import HashIndex
from repro.storage.heapfile import HeapFile, RecordId
from repro.storage.iostats import IOStatistics
from repro.storage.page import DEFAULT_BLOCK_SIZE
from repro.storage.schema import Schema


class Relation:
    """One named relation of the simulated database."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        buffer_pool: BufferPool,
        stats: IOStatistics,
        block_size: int = DEFAULT_BLOCK_SIZE,
        wal: Optional[object] = None,
    ) -> None:
        self.name = name
        self.schema = schema
        self.stats = stats
        self.heap = HeapFile(name, schema, buffer_pool, stats, block_size, wal=wal)
        self.isam = None  # set by create_isam_index
        self.hash_index: Optional[HashIndex] = None

    @property
    def wal(self) -> Optional[object]:
        """The attached write-ahead log (lives on the heap file)."""
        return self.heap.wal

    # ------------------------------------------------------------------
    # size metadata (the cost model's vocabulary)
    # ------------------------------------------------------------------
    @property
    def tuple_count(self) -> int:
        return self.heap.tuple_count

    @property
    def block_count(self) -> int:
        return self.heap.blocks_needed()

    @property
    def blocking_factor(self) -> int:
        return self.heap.blocking_factor

    @property
    def tuple_size(self) -> int:
        return self.schema.tuple_size

    # ------------------------------------------------------------------
    # index management
    # ------------------------------------------------------------------
    def create_isam_index(self, key_field: str, fanout: int = 10):
        """Build a primary ISAM index (the paper's index on R.node-id)."""
        from repro.storage.isam import ISAMIndex

        self.schema.field(key_field)  # validates the field exists
        index = ISAMIndex(
            self.heap,
            key_field,
            self.stats,
            fanout=fanout,
            injector=self.heap.buffer_pool.injector,
        )
        index.build()
        self.isam = index
        if self.wal is not None:
            self.wal.log_index(self.name, "isam", key_field, fanout)
        return index

    def create_hash_index(
        self, key_field: str, bucket_count: int = 0
    ) -> HashIndex:
        """Build a primary hash index (the paper's index on S.Begin-node)."""
        self.schema.field(key_field)
        index = HashIndex(
            self.heap,
            key_field,
            self.stats,
            bucket_count=bucket_count,
            injector=self.heap.buffer_pool.injector,
        )
        index.build()
        self.hash_index = index
        if self.wal is not None:
            self.wal.log_index(self.name, "hash", key_field, bucket_count)
        return index

    # ------------------------------------------------------------------
    # tuple operations (delegate to the heap, keeping indexes honest)
    # ------------------------------------------------------------------
    def insert(self, values: Mapping[str, object]) -> RecordId:
        record_id = self.heap.insert(values)
        if self.isam is not None:
            self.isam.insert(values[self.isam.key_field], record_id)
        if self.hash_index is not None:
            self.hash_index.insert(
                values[self.hash_index.key_field], record_id
            )
        return record_id

    def insert_many(self, rows) -> int:
        count = 0
        for values in rows:
            self.insert(values)
            count += 1
        return count

    def bulk_load(self, rows) -> int:
        """Sequential bulk load (block-level write charges).

        Only valid before indexes exist — build indexes afterwards, as
        a 1993 DBA would.
        """
        if self.isam is not None or self.hash_index is not None:
            raise StorageError(
                f"bulk_load on {self.name!r} requires building indexes "
                "after loading"
            )
        return self.heap.bulk_load(rows)

    def scan(self) -> Iterator[Tuple[RecordId, Mapping[str, object]]]:
        return self.heap.scan()

    def scan_filter(
        self, predicate: Callable[[Mapping[str, object]], bool]
    ) -> Iterator[Tuple[RecordId, Mapping[str, object]]]:
        return self.heap.scan_filter(predicate)

    def read(self, record_id: RecordId) -> Mapping[str, object]:
        return self.heap.read(record_id)

    def update(self, record_id: RecordId, values: Mapping[str, object]) -> None:
        old = self.heap.read(record_id)
        if self.isam is not None and old[self.isam.key_field] != values.get(
            self.isam.key_field
        ):
            raise StorageError(
                f"cannot change ISAM key field {self.isam.key_field!r} "
                "via update"
            )
        self.heap.update(record_id, values)

    def replace_by_key(self, key: object, values: Mapping[str, object]) -> bool:
        """Keyed REPLACE through the ISAM index (QUEL's REPLACE)."""
        if self.isam is None:
            raise StorageError(
                f"relation {self.name!r} has no ISAM index for keyed replace"
            )
        return self.isam.update_via_index(key, dict(values))

    def fetch_by_key(self, key: object) -> Optional[dict]:
        """Keyed fetch through the ISAM index."""
        if self.isam is None:
            raise StorageError(
                f"relation {self.name!r} has no ISAM index for keyed fetch"
            )
        return self.isam.fetch(key)

    def delete(self, record_id: RecordId) -> None:
        """Tombstone one tuple (indexes, if any, must be unaffected)."""
        if self.isam is not None or self.hash_index is not None:
            raise StorageError(
                f"delete on indexed relation {self.name!r} is not "
                "supported; 1993-era indexes are static"
            )
        self.heap.delete(record_id)

    def truncate(self) -> None:
        self.heap.truncate()
        self.isam = None
        self.hash_index = None

    def all_tuples(self) -> List[dict]:
        """Materialise every live tuple (scan charges apply)."""
        return [dict(values) for _rid, values in self.scan()]

    def __len__(self) -> int:
        return self.heap.tuple_count

    def __repr__(self) -> str:
        return (
            f"Relation({self.name!r}, tuples={self.tuple_count}, "
            f"blocks={self.block_count})"
        )
